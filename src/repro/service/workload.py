"""JSON workload specs: declare matrices + request streams, replay them.

This is the serving layer's wire format — what ``python -m repro batch
workload.json`` consumes. A spec is a dict with two sections::

    {
      "matrices": {
        "G":  {"generator": "rmat", "scale": 8, "edge_factor": 8, "seed": 0,
               "prep": "triangle"},
        "A":  {"random": {"m": 200, "k": 150, "density": 0.05, "seed": 1}},
        "F":  {"path": "matrix.mtx"}
      },
      "requests": [
        {"a": "G", "b": "G", "mask": "G", "algorithm": "auto",
         "phases": 2, "repeat": 8, "tag": "tc"}
      ]
    }

``repeat`` expands a request N times — the idiom for modelling repeated
traffic under an unchanged mask, which is exactly where the plan cache
earns its keep (every repeat after the first is a warm hit).

Matrix ``prep`` values: ``triangle`` (symmetrize + degree-sort + tril, the
TC workload), ``undirected`` (symmetrize + simplify), ``pattern`` (values
to 1.0), or absent for as-is.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..sparse.csr import CSRMatrix
from .batch import BatchExecutor, BatchResult
from .engine import Engine
from .requests import Request


def _check_keys(name: str, what: str, given: dict, allowed: set) -> None:
    unknown = set(given) - allowed
    if unknown:
        raise ValueError(
            f"matrix {name!r}: unknown {what} fields {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


def _build_matrix(name: str, spec: dict[str, Any]) -> CSRMatrix:
    from ..graphs import erdos_renyi, rmat
    from ..graphs.prep import to_undirected_simple, triangle_prep
    from ..sparse import csr_random, read_matrix_market

    spec = dict(spec)
    prep = spec.pop("prep", None)
    try:
        if "path" in spec:
            _check_keys(name, "path-spec", spec, {"path"})
            try:
                m = read_matrix_market(spec["path"])
            except FileNotFoundError:
                raise ValueError(
                    f"matrix {name!r}: file not found: {spec['path']}"
                ) from None
        elif "random" in spec:
            _check_keys(name, "spec", spec, {"random"})
            r = dict(spec["random"])
            _check_keys(name, "random", r,
                        {"m", "k", "density", "seed", "values"})
            m = csr_random(r["m"], r.get("k", r["m"]),
                           density=r.get("density", 0.05),
                           rng=r.get("seed", 0),
                           values=r.get("values", "uniform"))
        elif spec.get("generator") == "rmat":
            _check_keys(name, "rmat", spec,
                        {"generator", "scale", "edge_factor", "seed"})
            m = rmat(spec["scale"], spec.get("edge_factor", 8),
                     rng=spec.get("seed", 0))
        elif spec.get("generator") == "er":
            _check_keys(name, "er", spec,
                        {"generator", "n", "degree", "seed"})
            m = erdos_renyi(spec["n"], spec.get("degree", 8.0),
                            rng=spec.get("seed", 0), symmetrize=True)
        else:
            raise ValueError(
                f"matrix {name!r}: need one of path/random/generator, got {spec}"
            )
    except KeyError as e:
        raise ValueError(f"matrix {name!r}: missing required field {e}") from None
    if prep == "triangle":
        m = triangle_prep(m)
    elif prep == "undirected":
        m = to_undirected_simple(m)
    elif prep == "pattern":
        m = m.pattern()
    elif prep is not None:
        raise ValueError(f"matrix {name!r}: unknown prep {prep!r}")
    return m


def load_workload(path: str | Path) -> dict[str, Any]:
    spec = json.loads(Path(path).read_text())
    if "requests" not in spec or "matrices" not in spec:
        raise ValueError("workload spec needs 'matrices' and 'requests' sections")
    return spec


def expand_requests(spec: dict[str, Any]) -> list[Request]:
    """Request list with ``repeat`` expanded in stream order."""
    out: list[Request] = []
    for i, rspec in enumerate(spec["requests"]):
        repeat = int(rspec.get("repeat", 1))
        req = Request.from_dict(rspec)
        if not req.tag:
            req.tag = f"req{i}"
        out.extend([req] * repeat)
    return out


def register_matrices(engine: Engine, spec: dict[str, Any]) -> None:
    """Build and register every matrix in the spec's ``matrices`` section
    (shared by the batch replay below and the async ``serve`` front end)."""
    for name, mspec in spec["matrices"].items():
        engine.register(name, _build_matrix(name, mspec))


def replay(spec: dict[str, Any], *, engine: Engine | None = None,
           executor=None) -> tuple[Engine, BatchResult]:
    """Register the spec's matrices into an engine and run its requests."""
    engine = engine or Engine()
    register_matrices(engine, spec)
    result = BatchExecutor(engine, executor).run(expand_requests(spec))
    return engine, result


def render_serve_report(engine: Engine, server, responses,
                        seconds: float) -> str:
    """Human-readable async-serve report (the ``repro serve`` CLI output):
    per-request rows plus throughput, queue-wait and cache-tier telemetry."""
    from ..bench.metrics import hit_rate, summarize_latencies
    from ..bench.reporting import render_table

    rows = [[r.tag] + r.stats.as_row() + [r.stats.queued_seconds * 1e3]
            for r in responses]
    lines = [render_table(
        ["tag", "algorithm", "phases", "plan", "plan (ms)", "numeric (ms)",
         "total (ms)", "nnz", "queued (ms)"], rows)]
    lines.append("")
    n = len(responses)
    rps = n / seconds if seconds > 0 else float("inf")
    lines.append(
        f"serve: {n} requests in {seconds * 1e3:.1f} ms ({rps:.0f} req/s) — "
        f"{server.stats.batches} batches "
        f"({server.stats.requests_per_batch:.1f} req/batch), "
        f"peak queue depth {server.stats.max_queue_depth}, "
        f"peak in-flight {server.stats.max_inflight_seen}")
    stats = [r.stats for r in responses]
    coalesced = sum(1 for s in stats if s.coalesced)
    result_hits = sum(1 for s in stats if not s.coalesced and s.result_cache_hit)
    plan_hits = sum(1 for s in stats if not s.coalesced and s.plan_cache_hit)
    planned_misses = sum(1 for s in stats
                         if not s.coalesced and s.planned
                         and not s.plan_cache_hit and not s.result_cache_hit)
    warm = result_hits + plan_hits + coalesced
    lines.append(
        f"cache tiers: {coalesced} coalesced, {result_hits} result hits, "
        f"{plan_hits} plan hits, {planned_misses} cold plans "
        f"({100 * hit_rate(warm, planned_misses):.0f}% warm)")
    sharded = sum(1 for s in stats if not s.coalesced and s.sharded)
    executed = sum(1 for s in stats if not s.coalesced)
    if engine.shards is not None or engine.shard_degraded or sharded:
        if engine.shards is not None:
            # denominator = executed requests: coalesced responses share a
            # primary's result and never ran anywhere themselves
            lines.append(
                f"shards: {sharded}/{executed} executed requests ran on "
                f"the {engine.shards.nshards}-worker shard pool "
                f"({engine.shards.store.shared_bytes} shared operand bytes)")
        else:
            lines.append(
                "shards: requested but degraded to in-process execution "
                "(shared memory unavailable)")
    waits = summarize_latencies([s.queued_seconds for s in stats])
    if waits:
        lines.append(f"queue wait: {waits}")
    # coalesced responses carry copies of their primary's stats; keep them
    # out of every latency bucket so one timing is never counted N times
    for label, pick in (("cold", lambda s: not s.coalesced and s.planned
                         and not s.plan_cache_hit and not s.result_cache_hit),
                        ("warm (plan hit)",
                         lambda s: not s.coalesced and s.plan_cache_hit),
                        ("result hit",
                         lambda s: not s.coalesced and s.result_cache_hit)):
        summary = summarize_latencies(
            [s.total_seconds for s in stats if pick(s)])
        if summary:
            lines.append(f"{label} requests: {summary}")
    lines.append(f"engine: {len(engine.store)} matrices "
                 f"({engine.store.total_bytes} bytes resident), "
                 f"{len(engine.plans)} plans cached"
                 + (f", {len(engine.results)} results cached "
                    f"({engine.results.total_bytes} bytes)"
                    if engine.results is not None else ""))
    return "\n".join(lines)


def render_report(engine: Engine, result: BatchResult) -> str:
    """Human-readable replay report (the CLI's output)."""
    from ..bench.metrics import summarize_latencies
    from ..bench.reporting import render_table

    rows = [[r.tag] + r.stats.as_row() for r in result.responses]
    lines = [render_table(
        ["tag", "algorithm", "phases", "plan", "plan (ms)", "numeric (ms)",
         "total (ms)", "nnz"], rows)]
    lines.append("")
    lines.append(
        f"batch: {len(result.responses)} requests in {result.seconds * 1e3:.1f} ms "
        f"({result.groups} groups) — plan cache: {result.plan_hits} hits / "
        f"{result.plan_misses} misses ({100 * result.plan_hit_rate:.0f}% hit rate)"
    )
    # latency lines are batch-scoped (a reused engine's lifetime stats would
    # mix earlier traffic into this replay's report)
    batch_stats = [r.stats for r in result.responses if r.stats.planned]
    cold = summarize_latencies(
        [s.total_seconds for s in batch_stats if not s.plan_cache_hit])
    warm = summarize_latencies(
        [s.total_seconds for s in batch_stats if s.plan_cache_hit])
    if cold:
        lines.append(f"cold requests: {cold}")
    if warm:
        lines.append(f"warm requests: {warm}")
    lines.append(f"engine: {len(engine.store)} matrices "
                 f"({engine.store.total_bytes} bytes resident), "
                 f"{len(engine.plans)} plans cached")
    return "\n".join(lines)
