"""The execution engine: stateful masked-SpGEMM with plan and result caching.

``Engine`` turns the one-shot :func:`repro.core.masked_spgemm` call into a
service: operands live in a :class:`~repro.service.store.MatrixStore`,
symbolic plans live in a :class:`~repro.service.plan.PlanCache`, full numeric
results (optionally) in a :class:`~repro.service.result_cache.ResultCache`,
and every product goes through :meth:`Engine.submit` (store-keyed requests)
or :meth:`Engine.multiply` (ad-hoc operands, used by the iterative
algorithms).

Execution of one request:

1. resolve operands and fingerprint their patterns (store entries memoize
   the hash; ad-hoc operands pay it per call — O(nnz), far below a product);
2. when a result cache is attached (store-keyed requests only), probe it
   under the plan key extended with both operands' *value* hashes. Hit →
   return the memoized CSR output, bit-identical by construction, no plan
   lookup, no numeric pass;
3. look up the plan under the full structural key. Warm hit → skip both
   ``auto_select`` and (for two-phase) the entire symbolic pass by handing
   the cached plan to ``masked_spgemm(plan=...)``. Miss →
   :func:`repro.core.plan.build_plan` once, cache, proceed;
4. numeric pass (optionally row-parallel via the engine's executor). Warm
   two-phase requests on a chunk-fused kernel take the *direct-write* path
   (``RequestStats.direct_write``): the plan's row sizes preallocate the
   final CSR arrays and chunks scatter into disjoint slices with zero
   stitch copies, the computed sizes validated against the plan so a stale
   plan fails loudly instead of silently corrupting output.

Warm plans can also outlive the process: :meth:`Engine.save_plans` persists
the plan cache through :class:`~repro.service.plan.PlanStore` and
:meth:`Engine.load_plans` restores it, so a restarted service starts with
every previously-seen pattern already planned (``python -m repro serve
--plans``).

The engine is thread-safe (one lock around store/cache metadata; numeric
work runs outside it), which is what lets
:class:`~repro.service.batch.BatchExecutor` fan requests across a thread
pool and :class:`~repro.service.server.AsyncServer` drain its admission
queue from multiple workers.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque

from ..core import masked_spgemm
from ..core.plan import SymbolicPlan, build_plan
from ..errors import AlgorithmError
from ..core.registry import BASELINE_KEYS
from ..mask import Mask
from ..obs import MetricsRegistry, Tracer, span
from ..obs.metrics import CHUNK_BUCKETS
from ..resilience import (CircuitBreaker, DeadlineExceeded, FaultPlan,
                          InjectedFault, RetryPolicy, apply_fault,
                          resolve_deadline)
from ..semiring import Semiring
from ..semiring.standard import by_name as semiring_by_name
from ..sparse.csr import CSRMatrix
from ..sparse.ops import pattern_fingerprint
from .plan import PlanCache, PlanStore, plan_key
from .requests import Request, RequestStats, Response
from .result_cache import ResultCache, result_key
from .store import MatrixStore


class EngineStats:
    """Aggregate engine telemetry, **derived from** the metrics registry.

    Historically this was a parallel set of plain counters updated next to
    the registry; now the registry (``repro_engine_requests_total{tier}``,
    ``repro_engine_events_total{event}``, ``repro_request_seconds{tier}``,
    ``repro_phase_seconds{phase}``) is the single source of truth and every
    attribute here is a read-only view over it, so ``/metrics`` and
    ``engine.stats`` can never disagree. The serving **tier** of a request
    is where it was answered: ``result`` (whole numeric output from the
    result cache), ``warm`` (plan-cache hit), ``cold`` (plan built), or
    ``unplanned`` (baselines — no symbolic phase, excluded from plan
    hit/miss accounting).

    The latency deques are the one thing kept *outside* the registry:
    histograms give bucketed distributions for scraping, while percentile
    reporting (``repro serve`` summaries, bench faces) wants the raw recent
    window. Bounded, same rationale as before.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter(
            "repro_engine_requests_total",
            "requests by serving tier (result/warm/cold/unplanned)",
            labels=("tier",))
        self._events = self.registry.counter(
            "repro_engine_events_total",
            "request-path events (symbolic_skipped/sharded/direct_write)",
            labels=("event",))
        self._request_seconds = self.registry.histogram(
            "repro_request_seconds",
            "end-to-end engine request latency by serving tier",
            labels=("tier",))
        self._phase_seconds = self.registry.histogram(
            "repro_phase_seconds",
            "engine time by phase (plan = auto-select + symbolic)",
            labels=("phase",))
        #: bounded windows (a long-lived service must not grow telemetry
        #: without limit); the registry covers the full lifetime
        self.cold_latencies: deque = deque(maxlen=4096)
        self.warm_latencies: deque = deque(maxlen=4096)
        self.result_latencies: deque = deque(maxlen=4096)

    # -- registry-derived views ----------------------------------------- #
    @property
    def requests(self) -> int:
        return int(self._requests.total())

    @property
    def plan_hits(self) -> int:
        return int(self._requests.value(tier="warm"))

    @property
    def plan_misses(self) -> int:
        return int(self._requests.value(tier="cold"))

    @property
    def unplanned(self) -> int:
        """Baseline requests — never planned, excluded from hit/miss."""
        return int(self._requests.value(tier="unplanned"))

    @property
    def result_hits(self) -> int:
        """Requests served whole from the result cache (no plan lookup, no
        numeric pass) — also excluded from plan hit/miss accounting."""
        return int(self._requests.value(tier="result"))

    @property
    def symbolic_skipped(self) -> int:
        return int(self._events.value(event="symbolic_skipped"))

    @property
    def sharded(self) -> int:
        """Numeric passes executed on the shard-worker pool (shared-memory
        direct write); the complement ran in-process."""
        return int(self._events.value(event="sharded"))

    @property
    def plan_seconds(self) -> float:
        return self._phase_seconds.sum(phase="plan")

    @property
    def numeric_seconds(self) -> float:
        return self._phase_seconds.sum(phase="numeric")

    @property
    def plan_hit_rate(self) -> float:
        from ..bench.metrics import hit_rate

        return hit_rate(self.plan_hits, self.plan_misses)

    def record(self, stats: RequestStats) -> None:
        if stats.result_cache_hit:
            # the plan cache was never consulted; keep its accounting clean
            self._requests.inc(tier="result")
            self._request_seconds.observe(stats.total_seconds, tier="result")
            self.result_latencies.append(stats.total_seconds)
            return
        if not stats.planned:
            tier = "unplanned"  # baselines can never warm; keep them out
        elif stats.plan_cache_hit:
            tier = "warm"
            self.warm_latencies.append(stats.total_seconds)
        else:
            tier = "cold"
            self.cold_latencies.append(stats.total_seconds)
        self._requests.inc(tier=tier)
        self._request_seconds.observe(stats.total_seconds, tier=tier)
        if stats.symbolic_skipped:
            self._events.inc(event="symbolic_skipped")
        if stats.sharded:
            self._events.inc(event="sharded")
        if stats.direct_write:
            self._events.inc(event="direct_write")
        if stats.plan_seconds:
            self._phase_seconds.observe(stats.plan_seconds, phase="plan")
        self._phase_seconds.observe(stats.numeric_seconds, phase="numeric")


class Engine:
    """Batched masked-SpGEMM execution engine with symbolic plan caching.

    Parameters
    ----------
    store, plan_cache : pre-built components (defaults constructed from the
        keyword knobs below).
    budget_bytes : operand-memory budget for the default store (LRU evicted).
    plan_capacity : max cached plans for the default cache.
    result_cache : optional :class:`ResultCache` memoizing whole numeric
        results for store-keyed requests (``result_cache_bytes`` builds a
        default-configured one). Off by default: ad-hoc/iterative traffic
        changes values every call, so only serving-style deployments should
        pay the per-request value hash.
    executor : optional :mod:`repro.parallel` executor used for the numeric
        pass of every request (row parallelism *within* a product;
        :class:`BatchExecutor` adds parallelism *across* products).
    shards : optional shard-worker pool size. When set (and shared memory is
        usable — see :func:`repro.shard.shared_memory_available`), operands
        are mirrored into shared-memory segments at registration and every
        eligible request's numeric pass runs on a persistent
        :class:`~repro.shard.ShardCoordinator` pool, each worker scattering
        its row range straight into a shared output CSR
        (``RequestStats.sharded``). Ineligible requests (baselines,
        non-direct-write kernels, custom semirings) and environments without
        shared memory degrade to the in-process path —
        :attr:`shard_degraded` reports the latter.
    result_admit_flops_per_byte : admission threshold for the default result
        cache (see :class:`ResultCache`): results estimated to save fewer
        flops per cached byte are not admitted. 0 admits everything.
    metrics : optional shared :class:`~repro.obs.MetricsRegistry` (a private
        one by default). The engine's own counters, both caches' counters,
        and (via :class:`~repro.service.server.AsyncServer`) the server's
        all land in this registry — one ``/metrics`` page per engine.
    tracer : optional shared :class:`~repro.obs.Tracer`; ``tracing`` builds
        the default one enabled/disabled. Every request executes under its
        own trace record (id on ``RequestStats.trace_id``) holding the
        phase spans; disabled tracing reduces every ``span()`` on the path
        to a no-op contextvar read (the <3% overhead gate in
        ``benchmarks/bench_obs_overhead.py`` measures enabled vs that).
    retry : :class:`~repro.resilience.RetryPolicy` for the shard tier
        (bounded attempts + seeded exponential backoff; the default policy
        retries once). Failed attempts degrade down the tier ladder —
        shards → in-process fused → per-row loop kernels — every rung
        bit-identical.
    breaker : :class:`~repro.resilience.CircuitBreaker` guarding the shard
        tier: after N consecutive pool failures requests route straight to
        the in-process tier (no scatter, no per-request failure tax) until
        a half-open probe succeeds.
    faults : :class:`~repro.resilience.FaultPlan` chaos seam — defaults to
        ``FaultPlan.from_env()`` (the ``REPRO_FAULTS`` variable), so the CI
        chaos leg can inject worker kills into an unmodified server.
    """

    def __init__(self, store: MatrixStore | None = None,
                 plan_cache: PlanCache | None = None, *,
                 budget_bytes: int | None = None,
                 plan_capacity: int = 256,
                 result_cache: ResultCache | None = None,
                 result_cache_bytes: int | None = None,
                 result_admit_flops_per_byte: float = 0.0,
                 executor=None,
                 shards: int | None = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 tracing: bool = True,
                 retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 faults: FaultPlan | None = None):
        self.store = store if store is not None else MatrixStore(budget_bytes)
        self.plans = plan_cache if plan_cache is not None else PlanCache(plan_capacity)
        if result_cache is None and result_cache_bytes is not None:
            result_cache = ResultCache(
                result_cache_bytes,
                min_flops_per_byte=result_admit_flops_per_byte)
        self.results = result_cache
        self.executor = executor
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=tracing)
        self.stats = EngineStats(self.metrics)
        # single source of truth for cache accounting: both caches' counters
        # live in the engine registry (satellite of the obs PR)
        self.plans.bind_metrics(self.metrics)
        if self.results is not None:
            self.results.bind_metrics(self.metrics)
        self._chunk_seconds = self.metrics.histogram(
            "repro_chunk_seconds",
            "per-chunk kernel wall time (derived from trace spans; "
            "populated while tracing is enabled)",
            labels=("kernel", "phase"), buckets=CHUNK_BUCKETS)
        self._scatter_seconds = self.metrics.histogram(
            "repro_shard_scatter_seconds",
            "coordinator-side shard fan-out wall time (derived from trace "
            "spans; populated while tracing is enabled)",
            labels=("phase",))
        self._trace_seq = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False
        # resilience: retry/degrade ladder, breaker, chaos seam (PR 7)
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self.breaker.bind_metrics(self.metrics)
        self._retries = self.metrics.counter(
            "repro_retries_total",
            "same-tier retry attempts by tier and outcome",
            labels=("tier", "outcome"))
        self._degraded = self.metrics.counter(
            "repro_degraded_total",
            "tier downgrades from → to (results stay bit-identical)",
            labels=("from", "to"))
        self._deadline_total = self.metrics.counter(
            "repro_deadline_total",
            "requests shed by deadline, by enforcement stage",
            labels=("stage",))
        self.shards = None
        self.shard_degraded = False
        if shards:
            from ..shard import ShardCoordinator, shared_memory_available

            if shared_memory_available():
                self.shards = ShardCoordinator(shards, faults=self.faults)
                store_ref = self.shards.store
                self.metrics.gauge(
                    "repro_shm_segment_bytes",
                    "bytes held in shared-memory operand segments",
                    callback=lambda: store_ref.shared_bytes)
            else:
                self.shard_degraded = True

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release owned multi-process resources: terminate the shard pool
        and unlink every shared-memory segment. Idempotent, and safe (a
        no-op) on engines without sharding — callers can put it in a
        ``finally`` unconditionally. The executor is caller-owned and stays
        open."""
        self._closed = True
        coord, self.shards = self.shards, None
        if coord is not None:
            coord.close()

    def ready(self) -> bool:
        """Readiness probe backing ``/readyz``: can this engine serve?

        A tripped breaker or a degraded shard tier still counts as ready —
        requests serve bit-identically from the in-process tiers; only a
        closed engine refuses work."""
        return not self._closed

    def _heal_shards(self) -> None:
        """Self-heal after a worker death: respawn the pool and re-share
        any operand segments that died with it from the in-process store
        (the coordinator can only detect missing segments; the engine holds
        the original matrices)."""
        if self.shards is None:
            return
        from ..shard import ShardError

        try:
            missing = self.shards.heal()
        except (ShardError, OSError):
            return  # still broken; the next attempt degrades in-process
        for key in missing:
            with self._lock:
                entry = (self.store.entry(key)
                         if key in self.store else None)
            try:
                if entry is not None:
                    self.shards.share(key, entry.value)
                else:
                    # not in the in-process store either: drop the stale
                    # handle so lookups fail fast as SegmentMissing
                    self.shards.evict(key)
            except (ShardError, OSError):
                self.shard_degraded = True

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # store facade
    # ------------------------------------------------------------------ #
    def register(self, key: str, value: CSRMatrix | Mask, *,
                 pin: bool = False) -> None:
        """Register (or replace) an operand/mask under ``key``.

        Plans need no explicit invalidation: they are keyed by pattern
        fingerprint, so a replacement with the same pattern keeps hitting
        and a pattern change misses by construction.
        """
        with self._lock:
            entry = self.store.register(key, value, pin=pin)
        # warm the memoized hashes now, outside the lock: first-touch
        # O(nnz) hashing on the request path would otherwise run under the
        # lock and stall every concurrent submitter (and, through
        # Engine.entry, the async server's admission loop)
        entry.fingerprint
        if self.results is not None:
            entry.value_fingerprint
        if self.shards is not None:
            from ..shard import ShardError

            try:
                self.shards.share(key, value)
            except ShardError:
                # no segment headroom for this operand: it simply serves
                # in-process (requests naming it fall back per-request)
                self.shard_degraded = True
            # reconcile with the in-process store's byte-budget LRU: any
            # operand it silently evicted during this register must drop
            # its shared segment too, or /dev/shm grows without bound
            # under operand churn
            with self._lock:
                evicted = [k for k in self.shards.store.keys()
                           if k not in self.store]
            for k in evicted:
                self.shards.evict(k)

    def evict(self, key: str) -> bool:
        if self.shards is not None:
            self.shards.evict(key)
        with self._lock:
            return self.store.evict(key)

    def entry(self, key: str):
        """Thread-safe store-entry resolution (marks the entry MRU).

        External callers must come through here rather than touching
        ``engine.store`` directly: the store's LRU bookkeeping is a
        pop-then-reinsert that is only safe under the engine lock.
        """
        with self._lock:
            return self.store.entry(key)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def submit(self, request: Request) -> Response:
        """Execute one store-keyed request."""
        with self._lock:
            a_entry = self.store.entry(request.a)
            b_entry = self.store.entry(request.b)
            mask_entry = (self.store.entry(request.mask)
                          if request.mask is not None else None)
        # fingerprints are read outside the lock: register() pre-warms them,
        # but a first touch here (entries registered via a bare store) is
        # O(nnz) hashing — memoized on the entry, so a racing duplicate
        # compute is idempotent and harmless
        a_fp = a_entry.fingerprint
        b_fp = b_entry.fingerprint
        # value hashes are only worth computing when a result cache is
        # attached; store entries memoize them per registration
        value_fps = ((a_entry.value_fingerprint, b_entry.value_fingerprint)
                     if self.results is not None else None)
        A, B = a_entry.value, b_entry.value
        if not isinstance(A, CSRMatrix) or not isinstance(B, CSRMatrix):
            from .store import StoreError

            raise StoreError(
                f"operands {request.a!r}/{request.b!r} must be CSR matrices "
                f"(masks can only appear in the mask slot)"
            )
        mask = self._resolve_mask(mask_entry.value if mask_entry else None,
                                  (A.nrows, B.ncols), request.complemented)
        mask_fp = (mask_entry.fingerprint if mask_entry
                   else pattern_fingerprint(mask.indptr, mask.indices, mask.shape))
        return self._execute(A, B, mask, a_fp, b_fp, mask_fp,
                             algorithm=request.algorithm,
                             phases=request.phases,
                             semiring=semiring_by_name(request.semiring),
                             tag=request.tag, request=request,
                             value_fps=value_fps)

    def multiply(self, A: CSRMatrix, B: CSRMatrix,
                 mask: Mask | CSRMatrix | None = None, *,
                 algorithm: str = "auto", phases: int = 2,
                 semiring: Semiring | str = "plus_times",
                 complemented: bool = False, tag: str = "") -> Response:
        """Execute an ad-hoc product through the plan cache (no store keys).

        This is the entry point the iterative algorithms use: operands are
        fresh objects every iteration, but iterations whose *patterns*
        repeat (k-truss re-queried on the same graph, MCL's stabilized
        support) still hit cached plans.
        """
        if isinstance(semiring, str):
            semiring = semiring_by_name(semiring)
        out_shape = (A.nrows, B.ncols)
        mask_obj = mask
        mask = self._resolve_mask(mask, out_shape, complemented)
        a_fp = pattern_fingerprint(A.indptr, A.indices, A.shape)
        b_fp = (a_fp if B is A
                else pattern_fingerprint(B.indptr, B.indices, B.shape))
        # iterative algorithms often pass the same matrix as operand and
        # mask (k-truss: C ⊙ (C·C)) — reuse its fingerprint instead of
        # re-hashing the pattern
        if mask_obj is A:
            mask_fp = a_fp
        elif mask_obj is B:
            mask_fp = b_fp
        else:
            mask_fp = pattern_fingerprint(mask.indptr, mask.indices,
                                          mask.shape)
        return self._execute(A, B, mask, a_fp, b_fp, mask_fp,
                             algorithm=algorithm, phases=phases,
                             semiring=semiring, tag=tag, request=None)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_mask(mask, out_shape, complemented: bool) -> Mask:
        if mask is None:
            if complemented:
                # ¬(full mask) selects nothing — always-empty output; this
                # is a forgotten mask key, not a meaningful request
                raise AlgorithmError(
                    "complemented=True without a mask would mask out every "
                    "entry; provide the mask to complement"
                )
            mask = Mask.full(out_shape)
        elif isinstance(mask, CSRMatrix):
            mask = Mask.from_matrix(mask)
        if complemented:
            mask = mask.complement()
        return mask

    def _execute(self, A, B, mask, a_fp, b_fp, mask_fp, *, algorithm,
                 phases, semiring, tag, request,
                 value_fps: tuple[str, str] | None = None) -> Response:
        trace_id = (f"r{next(self._trace_seq):06d}"
                    if self.tracer.enabled else "")
        with self.tracer.trace(trace_id, tag=tag, algorithm=algorithm,
                               phases=phases) as rec:
            try:
                return self._execute_traced(
                    A, B, mask, a_fp, b_fp, mask_fp, algorithm=algorithm,
                    phases=phases, semiring=semiring, tag=tag,
                    request=request, value_fps=value_fps,
                    trace_id=trace_id)
            except DeadlineExceeded as exc:
                self._deadline_total.inc(stage=exc.stage or "engine")
                raise
            finally:
                if rec is not None:
                    self._harvest_spans(rec)

    def _harvest_spans(self, rec) -> None:
        """Derive the chunk/scatter histograms from the request's finished
        trace spans: the span timing is the single measurement, the metrics
        a bucketed view of it (so they populate while tracing is on)."""
        for sp in rec.find("chunk"):
            self._chunk_seconds.observe(
                sp.seconds, kernel=str(sp.attrs.get("kernel", "")),
                phase=str(sp.attrs.get("phase", "numeric")))
        for sp in rec.find("shard.scatter"):
            self._scatter_seconds.observe(
                sp.seconds, phase=str(sp.attrs.get("phase", "")))

    def _build_plan_cold(self, A, B, mask, algorithm, phases,
                         request, deadline=None) -> SymbolicPlan:
        """Cold plan build — the one place symbolic work happens.

        With a multi-worker shard pool and a store-keyed two-phase request,
        the symbolic pass itself runs row-partitioned across the pool
        (:meth:`ShardCoordinator.symbolic`) instead of serially in-process —
        previously only the *numeric* pass was sharded, leaving the cold
        path single-threaded. Ineligible or failing cases (ad-hoc operands,
        unshared segments, segment pressure) degrade to the serial
        :func:`build_plan`, same result either way.
        """
        if (self.shards is not None and self.shards.nshards > 1
                and request is not None and phases == 2
                and self.breaker.allow()):
            from ..core import registry as kernel_registry
            from ..shard import ShardError, WorkerDied

            resolved = algorithm.lower()
            if resolved == "auto":
                resolved = kernel_registry.auto_select(A, B, mask)
            kernel_registry.get_spec(resolved)  # invalid names fail loudly
            try:
                row_sizes = self.shards.symbolic(
                    request.a, request.b, request.mask, mask,
                    (A.nrows, B.ncols), resolved, deadline=deadline)
                self.breaker.record_success()
                return SymbolicPlan(algorithm=resolved, phases=2,
                                    shape=(A.nrows, B.ncols),
                                    row_sizes=row_sizes)
            except (ShardError, OSError, InjectedFault) as exc:
                # same degradation contract as the numeric path below;
                # pool-health failures additionally feed the breaker and
                # trigger a heal so the *numeric* pass can still shard
                # (InjectedFault: a chaos-injected worker error behaves
                # exactly like the real one it models)
                self.shard_degraded = True
                if isinstance(exc, WorkerDied):
                    self.breaker.record_failure()
                    if self.breaker.state == "open":
                        self.shards.quiesce()
                    else:
                        self._heal_shards()
                self._degraded.inc(**{"from": "shard", "to": "inprocess"})
        return build_plan(A, B, mask, algorithm=algorithm, phases=phases)

    # ------------------------------------------------------------------ #
    # the numeric tier ladder: shards → in-process fused → loop kernels
    # ------------------------------------------------------------------ #
    def _shard_tier(self, request, mask, plan, semiring, key, stats,
                    deadline) -> CSRMatrix | None:
        """Attempt the shard tier, retrying per :attr:`retry`; ``None``
        means the caller should degrade to the in-process tier.

        Failure taxonomy: ``DeadlineExceeded`` propagates (the caller's
        budget expired — no tier can fix that); ``SegmentMissing`` degrades
        immediately without feeding the breaker (a per-request operand
        condition, not pool sickness); ``WorkerDied`` feeds the breaker and
        triggers a pool heal *before* the retry, so the retry lands on a
        fresh pool; other ``ShardError``/``OSError`` feed the breaker and
        retry in place. A failure that opens the breaker instead parks the
        pool (:meth:`~repro.shard.ShardCoordinator.quiesce`) for the whole
        cooldown — the half-open probe's dispatch respawns it. All degraded
        outcomes stay bit-identical — the in-process tiers run the same
        kernels on the same plan.
        """
        from ..shard import SegmentMissing, ShardError, WorkerDied

        attempt = 0
        while True:
            try:
                # store-keyed request on a fused kernel: numeric pass runs
                # on the shard pool, workers scattering into a shared
                # output CSR (multi-process direct write)
                result = self.shards.multiply(
                    request.a, request.b, request.mask, mask, plan,
                    semiring, plan_cache_key=key, deadline=deadline)
                self.breaker.record_success()
                if attempt:
                    self._retries.inc(tier="shard", outcome="success")
                stats.sharded = True
                stats.direct_write = True
                return result
            except DeadlineExceeded:
                raise
            except SegmentMissing:
                # incl. a worker's attach losing a race with operand
                # re-registration; serves in-process, no breaker count
                self.shard_degraded = True
                self._degraded.inc(**{"from": "shard", "to": "inprocess"})
                return None
            except (ShardError, OSError, InjectedFault) as exc:
                # InjectedFault from a worker counts as the worker error
                # it models: breaker-fed, retried, then degraded
                self.shard_degraded = True
                self.breaker.record_failure()
                if self.breaker.state == "open":
                    # the tier is out of rotation for a whole cooldown:
                    # park the pool so its support threads stop contending
                    # with the in-process kernels (the half-open probe's
                    # dispatch respawns it)
                    self.shards.quiesce()
                elif isinstance(exc, WorkerDied):
                    self._heal_shards()
                attempt += 1
                if (attempt >= self.retry.max_attempts
                        or not self.breaker.allow()):
                    if attempt > 1:
                        self._retries.inc(tier="shard", outcome="failure")
                    self._degraded.inc(**{"from": "shard",
                                          "to": "inprocess"})
                    return None
                if deadline is not None:
                    deadline.check("engine", "shard retry")
                with span("retry", tier="shard", attempt=attempt,
                          error=type(exc).__name__):
                    self.retry.sleep(attempt - 1)

    def _inprocess_tiers(self, A, B, mask, plan, algorithm, phases,
                         semiring, deadline) -> CSRMatrix:
        """Tier 2 (fused in-process kernels), with tier 3 (per-row
        ``msa-loop``) as the last rung.

        The loop tier exists because a cached :class:`SymbolicPlan`'s row
        sizes are *kernel-independent*: relabelling the plan replays the
        same masked product through the simplest kernel in the registry
        with the warm symbolic work intact — bit-identical output with the
        smallest possible code surface under it. Only deliberate injections
        (:class:`InjectedFault` via the ``engine.kernel`` site) and memory
        pressure degrade here; genuine kernel bugs stay loud, because
        silently papering over them would hide miscompares, not failures.
        """
        if deadline is not None:
            deadline.check("engine", "numeric start")
        try:
            if self.faults is not None and plan is not None:
                apply_fault(self.faults.check("engine.kernel"))
            return masked_spgemm(A, B, mask, algorithm=algorithm,
                                 semiring=semiring, phases=phases,
                                 executor=self.executor, plan=plan)
        except (InjectedFault, MemoryError) as exc:
            if plan is None:
                raise  # baselines have no plan to relabel for the loop tier
            self._degraded.inc(**{"from": "inprocess", "to": "loop"})
            with span("degrade", tier="loop", error=type(exc).__name__,
                      **{"from": "inprocess", "to": "loop"}):
                loop_plan = SymbolicPlan(algorithm="msa-loop",
                                         phases=plan.phases,
                                         shape=plan.shape,
                                         row_sizes=plan.row_sizes)
                return masked_spgemm(A, B, mask, algorithm="msa-loop",
                                     semiring=semiring, phases=phases,
                                     plan=loop_plan)

    def _execute_traced(self, A, B, mask, a_fp, b_fp, mask_fp, *, algorithm,
                        phases, semiring, tag, request, value_fps,
                        trace_id: str) -> Response:
        t_start = time.perf_counter()
        stats = RequestStats(phases=phases, trace_id=trace_id)
        plan: SymbolicPlan | None = None
        # the server stamps a started deadline on the request at admission
        # (so queue time counts); direct engine callers start one here
        deadline = resolve_deadline(request) if request is not None else None
        if deadline is not None:
            deadline.check("engine")

        key = plan_key(a_fp, b_fp, mask_fp, mask.complemented,
                       algorithm, phases, semiring.name)
        rkey = None
        if value_fps is not None:
            # result tier sits in front of the plan tier: a hit returns the
            # memoized CSR output with no plan lookup and no numeric pass
            rkey = result_key(key, *value_fps)
            with span("cache.lookup", cache="result"):
                with self._lock:
                    cached = self.results.get(rkey)
            if cached is not None:
                stats.algorithm = cached.algorithm
                stats.planned = algorithm.lower() not in BASELINE_KEYS
                stats.result_cache_hit = True
                stats.output_nnz = cached.matrix.nnz
                stats.total_seconds = time.perf_counter() - t_start
                with self._lock:
                    self.stats.record(stats)
                return Response(result=cached.matrix, stats=stats, tag=tag,
                                request=request)

        if algorithm.lower() in BASELINE_KEYS:
            # whole-matrix baselines have no symbolic phase to plan
            stats.algorithm = algorithm.lower()
            stats.planned = False
        else:
            with span("cache.lookup", cache="plan"):
                with self._lock:
                    plan = self.plans.get(key)
            if plan is not None:
                stats.plan_cache_hit = True
                stats.plan_reused = True
                stats.symbolic_skipped = phases == 2
            else:
                t0 = time.perf_counter()
                with span("symbolic.cold", algorithm=algorithm,
                          phases=phases):
                    plan = self._build_plan_cold(A, B, mask, algorithm,
                                                 phases, request, deadline)
                stats.plan_seconds = time.perf_counter() - t0
                with self._lock:
                    self.plans.put(key, plan)
            stats.algorithm = plan.algorithm
            from ..parallel.runner import uses_direct_write

            stats.direct_write = uses_direct_write(
                plan.algorithm, phases, self.executor,
                row_sizes_known=plan.row_sizes is not None)

        t0 = time.perf_counter()
        result = None
        with span("numeric",
                  kernel=plan.algorithm if plan is not None
                  else algorithm.lower()) as numeric_span:
            if (self.shards is not None and request is not None
                    and plan is not None and plan.row_sizes is not None
                    and self.shards.eligible(plan.algorithm, semiring)):
                if self.breaker.allow():
                    result = self._shard_tier(request, mask, plan, semiring,
                                              key, stats, deadline)
                else:
                    # breaker open: route around the pool without paying a
                    # scatter-and-fail round trip per request
                    self._degraded.inc(**{"from": "shard",
                                          "to": "inprocess"})
            if result is None:
                result = self._inprocess_tiers(A, B, mask, plan, algorithm,
                                               phases, semiring, deadline)
            if numeric_span is not None:
                numeric_span.attrs["sharded"] = stats.sharded
        stats.numeric_seconds = time.perf_counter() - t0
        stats.total_seconds = time.perf_counter() - t_start
        stats.output_nnz = result.nnz
        flops = None
        if rkey is not None and self.results.min_flops_per_byte > 0:
            # admission estimate, computed outside the lock (O(nnz(A)))
            from ..core.expand import total_flops

            flops = total_flops(A, B)
        with self._lock:
            if rkey is not None:
                with span("cache.writeback"):
                    self.results.put(rkey, result,
                                     stats.algorithm or algorithm,
                                     flops=flops)
            self.stats.record(stats)
        return Response(result=result, stats=stats, tag=tag, request=request)

    # ------------------------------------------------------------------ #
    # plan persistence
    # ------------------------------------------------------------------ #
    def save_plans(self, path) -> int:
        """Persist every cached plan to an ``.npz`` plan store at ``path``.

        Returns the number of plans written. The file is keyed purely on
        content fingerprints, so any engine (this process or a future one)
        whose operands hash identically can :meth:`load_plans` it.
        """
        with self._lock:
            items = self.plans.items()
        return PlanStore(path).save(items)

    def load_plans(self, path) -> int:
        """Warm-start the plan cache from a persisted store; returns the
        number of plans restored. Restored plans behave exactly like locally
        built ones: the first matching request is already a hit and skips
        auto-select and (for 2P) the whole symbolic pass."""
        loaded = PlanStore(path).load()
        with self._lock:
            for key, plan in loaded:
                self.plans.put(key, plan)
        return len(loaded)
