"""The execution engine: stateful masked-SpGEMM with plan and result caching.

``Engine`` turns the one-shot :func:`repro.core.masked_spgemm` call into a
service: operands live in a :class:`~repro.service.store.MatrixStore`,
symbolic plans live in a :class:`~repro.service.plan.PlanCache`, full numeric
results (optionally) in a :class:`~repro.service.result_cache.ResultCache`,
and every product goes through :meth:`Engine.submit` (store-keyed requests)
or :meth:`Engine.multiply` (ad-hoc operands, used by the iterative
algorithms).

Execution of one request:

1. resolve operands and fingerprint their patterns (store entries memoize
   the hash; ad-hoc operands pay it per call — O(nnz), far below a product);
2. when a result cache is attached (store-keyed requests only), probe it
   under the plan key extended with both operands' *value* hashes. Hit →
   return the memoized CSR output, bit-identical by construction, no plan
   lookup, no numeric pass;
3. look up the plan under the full structural key. Warm hit → skip both
   ``auto_select`` and (for two-phase) the entire symbolic pass by handing
   the cached plan to ``masked_spgemm(plan=...)``. Miss →
   :func:`repro.core.plan.build_plan` once, cache, proceed;
4. numeric pass (optionally row-parallel via the engine's executor). Warm
   two-phase requests on a chunk-fused kernel take the *direct-write* path
   (``RequestStats.direct_write``): the plan's row sizes preallocate the
   final CSR arrays and chunks scatter into disjoint slices with zero
   stitch copies, the computed sizes validated against the plan so a stale
   plan fails loudly instead of silently corrupting output.

Warm plans can also outlive the process: :meth:`Engine.save_plans` persists
the plan cache through :class:`~repro.service.plan.PlanStore` and
:meth:`Engine.load_plans` restores it, so a restarted service starts with
every previously-seen pattern already planned (``python -m repro serve
--plans``).

The engine is thread-safe (one lock around store/cache metadata; numeric
work runs outside it), which is what lets
:class:`~repro.service.batch.BatchExecutor` fan requests across a thread
pool and :class:`~repro.service.server.AsyncServer` drain its admission
queue from multiple workers.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque

from ..core import masked_spgemm
from ..core.plan import SymbolicPlan, build_plan
from ..errors import AlgorithmError
from ..core.registry import BASELINE_KEYS
from ..mask import Mask
from ..obs import MetricsRegistry, Tracer, span
from ..obs.metrics import CHUNK_BUCKETS
from ..semiring import Semiring
from ..semiring.standard import by_name as semiring_by_name
from ..sparse.csr import CSRMatrix
from ..sparse.ops import pattern_fingerprint
from .plan import PlanCache, PlanStore, plan_key
from .requests import Request, RequestStats, Response
from .result_cache import ResultCache, result_key
from .store import MatrixStore


class EngineStats:
    """Aggregate engine telemetry, **derived from** the metrics registry.

    Historically this was a parallel set of plain counters updated next to
    the registry; now the registry (``repro_engine_requests_total{tier}``,
    ``repro_engine_events_total{event}``, ``repro_request_seconds{tier}``,
    ``repro_phase_seconds{phase}``) is the single source of truth and every
    attribute here is a read-only view over it, so ``/metrics`` and
    ``engine.stats`` can never disagree. The serving **tier** of a request
    is where it was answered: ``result`` (whole numeric output from the
    result cache), ``warm`` (plan-cache hit), ``cold`` (plan built), or
    ``unplanned`` (baselines — no symbolic phase, excluded from plan
    hit/miss accounting).

    The latency deques are the one thing kept *outside* the registry:
    histograms give bucketed distributions for scraping, while percentile
    reporting (``repro serve`` summaries, bench faces) wants the raw recent
    window. Bounded, same rationale as before.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter(
            "repro_engine_requests_total",
            "requests by serving tier (result/warm/cold/unplanned)",
            labels=("tier",))
        self._events = self.registry.counter(
            "repro_engine_events_total",
            "request-path events (symbolic_skipped/sharded/direct_write)",
            labels=("event",))
        self._request_seconds = self.registry.histogram(
            "repro_request_seconds",
            "end-to-end engine request latency by serving tier",
            labels=("tier",))
        self._phase_seconds = self.registry.histogram(
            "repro_phase_seconds",
            "engine time by phase (plan = auto-select + symbolic)",
            labels=("phase",))
        #: bounded windows (a long-lived service must not grow telemetry
        #: without limit); the registry covers the full lifetime
        self.cold_latencies: deque = deque(maxlen=4096)
        self.warm_latencies: deque = deque(maxlen=4096)
        self.result_latencies: deque = deque(maxlen=4096)

    # -- registry-derived views ----------------------------------------- #
    @property
    def requests(self) -> int:
        return int(self._requests.total())

    @property
    def plan_hits(self) -> int:
        return int(self._requests.value(tier="warm"))

    @property
    def plan_misses(self) -> int:
        return int(self._requests.value(tier="cold"))

    @property
    def unplanned(self) -> int:
        """Baseline requests — never planned, excluded from hit/miss."""
        return int(self._requests.value(tier="unplanned"))

    @property
    def result_hits(self) -> int:
        """Requests served whole from the result cache (no plan lookup, no
        numeric pass) — also excluded from plan hit/miss accounting."""
        return int(self._requests.value(tier="result"))

    @property
    def symbolic_skipped(self) -> int:
        return int(self._events.value(event="symbolic_skipped"))

    @property
    def sharded(self) -> int:
        """Numeric passes executed on the shard-worker pool (shared-memory
        direct write); the complement ran in-process."""
        return int(self._events.value(event="sharded"))

    @property
    def plan_seconds(self) -> float:
        return self._phase_seconds.sum(phase="plan")

    @property
    def numeric_seconds(self) -> float:
        return self._phase_seconds.sum(phase="numeric")

    @property
    def plan_hit_rate(self) -> float:
        from ..bench.metrics import hit_rate

        return hit_rate(self.plan_hits, self.plan_misses)

    def record(self, stats: RequestStats) -> None:
        if stats.result_cache_hit:
            # the plan cache was never consulted; keep its accounting clean
            self._requests.inc(tier="result")
            self._request_seconds.observe(stats.total_seconds, tier="result")
            self.result_latencies.append(stats.total_seconds)
            return
        if not stats.planned:
            tier = "unplanned"  # baselines can never warm; keep them out
        elif stats.plan_cache_hit:
            tier = "warm"
            self.warm_latencies.append(stats.total_seconds)
        else:
            tier = "cold"
            self.cold_latencies.append(stats.total_seconds)
        self._requests.inc(tier=tier)
        self._request_seconds.observe(stats.total_seconds, tier=tier)
        if stats.symbolic_skipped:
            self._events.inc(event="symbolic_skipped")
        if stats.sharded:
            self._events.inc(event="sharded")
        if stats.direct_write:
            self._events.inc(event="direct_write")
        if stats.plan_seconds:
            self._phase_seconds.observe(stats.plan_seconds, phase="plan")
        self._phase_seconds.observe(stats.numeric_seconds, phase="numeric")


class Engine:
    """Batched masked-SpGEMM execution engine with symbolic plan caching.

    Parameters
    ----------
    store, plan_cache : pre-built components (defaults constructed from the
        keyword knobs below).
    budget_bytes : operand-memory budget for the default store (LRU evicted).
    plan_capacity : max cached plans for the default cache.
    result_cache : optional :class:`ResultCache` memoizing whole numeric
        results for store-keyed requests (``result_cache_bytes`` builds a
        default-configured one). Off by default: ad-hoc/iterative traffic
        changes values every call, so only serving-style deployments should
        pay the per-request value hash.
    executor : optional :mod:`repro.parallel` executor used for the numeric
        pass of every request (row parallelism *within* a product;
        :class:`BatchExecutor` adds parallelism *across* products).
    shards : optional shard-worker pool size. When set (and shared memory is
        usable — see :func:`repro.shard.shared_memory_available`), operands
        are mirrored into shared-memory segments at registration and every
        eligible request's numeric pass runs on a persistent
        :class:`~repro.shard.ShardCoordinator` pool, each worker scattering
        its row range straight into a shared output CSR
        (``RequestStats.sharded``). Ineligible requests (baselines,
        non-direct-write kernels, custom semirings) and environments without
        shared memory degrade to the in-process path —
        :attr:`shard_degraded` reports the latter.
    result_admit_flops_per_byte : admission threshold for the default result
        cache (see :class:`ResultCache`): results estimated to save fewer
        flops per cached byte are not admitted. 0 admits everything.
    metrics : optional shared :class:`~repro.obs.MetricsRegistry` (a private
        one by default). The engine's own counters, both caches' counters,
        and (via :class:`~repro.service.server.AsyncServer`) the server's
        all land in this registry — one ``/metrics`` page per engine.
    tracer : optional shared :class:`~repro.obs.Tracer`; ``tracing`` builds
        the default one enabled/disabled. Every request executes under its
        own trace record (id on ``RequestStats.trace_id``) holding the
        phase spans; disabled tracing reduces every ``span()`` on the path
        to a no-op contextvar read (the <3% overhead gate in
        ``benchmarks/bench_obs_overhead.py`` measures enabled vs that).
    """

    def __init__(self, store: MatrixStore | None = None,
                 plan_cache: PlanCache | None = None, *,
                 budget_bytes: int | None = None,
                 plan_capacity: int = 256,
                 result_cache: ResultCache | None = None,
                 result_cache_bytes: int | None = None,
                 result_admit_flops_per_byte: float = 0.0,
                 executor=None,
                 shards: int | None = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 tracing: bool = True):
        self.store = store if store is not None else MatrixStore(budget_bytes)
        self.plans = plan_cache if plan_cache is not None else PlanCache(plan_capacity)
        if result_cache is None and result_cache_bytes is not None:
            result_cache = ResultCache(
                result_cache_bytes,
                min_flops_per_byte=result_admit_flops_per_byte)
        self.results = result_cache
        self.executor = executor
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=tracing)
        self.stats = EngineStats(self.metrics)
        # single source of truth for cache accounting: both caches' counters
        # live in the engine registry (satellite of the obs PR)
        self.plans.bind_metrics(self.metrics)
        if self.results is not None:
            self.results.bind_metrics(self.metrics)
        self._chunk_seconds = self.metrics.histogram(
            "repro_chunk_seconds",
            "per-chunk kernel wall time (derived from trace spans; "
            "populated while tracing is enabled)",
            labels=("kernel", "phase"), buckets=CHUNK_BUCKETS)
        self._scatter_seconds = self.metrics.histogram(
            "repro_shard_scatter_seconds",
            "coordinator-side shard fan-out wall time (derived from trace "
            "spans; populated while tracing is enabled)",
            labels=("phase",))
        self._trace_seq = itertools.count(1)
        self._lock = threading.Lock()
        self.shards = None
        self.shard_degraded = False
        if shards:
            from ..shard import ShardCoordinator, shared_memory_available

            if shared_memory_available():
                self.shards = ShardCoordinator(shards)
                store_ref = self.shards.store
                self.metrics.gauge(
                    "repro_shm_segment_bytes",
                    "bytes held in shared-memory operand segments",
                    callback=lambda: store_ref.shared_bytes)
            else:
                self.shard_degraded = True

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release owned multi-process resources: terminate the shard pool
        and unlink every shared-memory segment. Idempotent, and safe (a
        no-op) on engines without sharding — callers can put it in a
        ``finally`` unconditionally. The executor is caller-owned and stays
        open."""
        coord, self.shards = self.shards, None
        if coord is not None:
            coord.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # store facade
    # ------------------------------------------------------------------ #
    def register(self, key: str, value: CSRMatrix | Mask, *,
                 pin: bool = False) -> None:
        """Register (or replace) an operand/mask under ``key``.

        Plans need no explicit invalidation: they are keyed by pattern
        fingerprint, so a replacement with the same pattern keeps hitting
        and a pattern change misses by construction.
        """
        with self._lock:
            entry = self.store.register(key, value, pin=pin)
        # warm the memoized hashes now, outside the lock: first-touch
        # O(nnz) hashing on the request path would otherwise run under the
        # lock and stall every concurrent submitter (and, through
        # Engine.entry, the async server's admission loop)
        entry.fingerprint
        if self.results is not None:
            entry.value_fingerprint
        if self.shards is not None:
            from ..shard import ShardError

            try:
                self.shards.share(key, value)
            except ShardError:
                # no segment headroom for this operand: it simply serves
                # in-process (requests naming it fall back per-request)
                self.shard_degraded = True
            # reconcile with the in-process store's byte-budget LRU: any
            # operand it silently evicted during this register must drop
            # its shared segment too, or /dev/shm grows without bound
            # under operand churn
            with self._lock:
                evicted = [k for k in self.shards.store.keys()
                           if k not in self.store]
            for k in evicted:
                self.shards.evict(k)

    def evict(self, key: str) -> bool:
        if self.shards is not None:
            self.shards.evict(key)
        with self._lock:
            return self.store.evict(key)

    def entry(self, key: str):
        """Thread-safe store-entry resolution (marks the entry MRU).

        External callers must come through here rather than touching
        ``engine.store`` directly: the store's LRU bookkeeping is a
        pop-then-reinsert that is only safe under the engine lock.
        """
        with self._lock:
            return self.store.entry(key)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def submit(self, request: Request) -> Response:
        """Execute one store-keyed request."""
        with self._lock:
            a_entry = self.store.entry(request.a)
            b_entry = self.store.entry(request.b)
            mask_entry = (self.store.entry(request.mask)
                          if request.mask is not None else None)
        # fingerprints are read outside the lock: register() pre-warms them,
        # but a first touch here (entries registered via a bare store) is
        # O(nnz) hashing — memoized on the entry, so a racing duplicate
        # compute is idempotent and harmless
        a_fp = a_entry.fingerprint
        b_fp = b_entry.fingerprint
        # value hashes are only worth computing when a result cache is
        # attached; store entries memoize them per registration
        value_fps = ((a_entry.value_fingerprint, b_entry.value_fingerprint)
                     if self.results is not None else None)
        A, B = a_entry.value, b_entry.value
        if not isinstance(A, CSRMatrix) or not isinstance(B, CSRMatrix):
            from .store import StoreError

            raise StoreError(
                f"operands {request.a!r}/{request.b!r} must be CSR matrices "
                f"(masks can only appear in the mask slot)"
            )
        mask = self._resolve_mask(mask_entry.value if mask_entry else None,
                                  (A.nrows, B.ncols), request.complemented)
        mask_fp = (mask_entry.fingerprint if mask_entry
                   else pattern_fingerprint(mask.indptr, mask.indices, mask.shape))
        return self._execute(A, B, mask, a_fp, b_fp, mask_fp,
                             algorithm=request.algorithm,
                             phases=request.phases,
                             semiring=semiring_by_name(request.semiring),
                             tag=request.tag, request=request,
                             value_fps=value_fps)

    def multiply(self, A: CSRMatrix, B: CSRMatrix,
                 mask: Mask | CSRMatrix | None = None, *,
                 algorithm: str = "auto", phases: int = 2,
                 semiring: Semiring | str = "plus_times",
                 complemented: bool = False, tag: str = "") -> Response:
        """Execute an ad-hoc product through the plan cache (no store keys).

        This is the entry point the iterative algorithms use: operands are
        fresh objects every iteration, but iterations whose *patterns*
        repeat (k-truss re-queried on the same graph, MCL's stabilized
        support) still hit cached plans.
        """
        if isinstance(semiring, str):
            semiring = semiring_by_name(semiring)
        out_shape = (A.nrows, B.ncols)
        mask_obj = mask
        mask = self._resolve_mask(mask, out_shape, complemented)
        a_fp = pattern_fingerprint(A.indptr, A.indices, A.shape)
        b_fp = (a_fp if B is A
                else pattern_fingerprint(B.indptr, B.indices, B.shape))
        # iterative algorithms often pass the same matrix as operand and
        # mask (k-truss: C ⊙ (C·C)) — reuse its fingerprint instead of
        # re-hashing the pattern
        if mask_obj is A:
            mask_fp = a_fp
        elif mask_obj is B:
            mask_fp = b_fp
        else:
            mask_fp = pattern_fingerprint(mask.indptr, mask.indices,
                                          mask.shape)
        return self._execute(A, B, mask, a_fp, b_fp, mask_fp,
                             algorithm=algorithm, phases=phases,
                             semiring=semiring, tag=tag, request=None)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_mask(mask, out_shape, complemented: bool) -> Mask:
        if mask is None:
            if complemented:
                # ¬(full mask) selects nothing — always-empty output; this
                # is a forgotten mask key, not a meaningful request
                raise AlgorithmError(
                    "complemented=True without a mask would mask out every "
                    "entry; provide the mask to complement"
                )
            mask = Mask.full(out_shape)
        elif isinstance(mask, CSRMatrix):
            mask = Mask.from_matrix(mask)
        if complemented:
            mask = mask.complement()
        return mask

    def _execute(self, A, B, mask, a_fp, b_fp, mask_fp, *, algorithm,
                 phases, semiring, tag, request,
                 value_fps: tuple[str, str] | None = None) -> Response:
        trace_id = (f"r{next(self._trace_seq):06d}"
                    if self.tracer.enabled else "")
        with self.tracer.trace(trace_id, tag=tag, algorithm=algorithm,
                               phases=phases) as rec:
            try:
                return self._execute_traced(
                    A, B, mask, a_fp, b_fp, mask_fp, algorithm=algorithm,
                    phases=phases, semiring=semiring, tag=tag,
                    request=request, value_fps=value_fps,
                    trace_id=trace_id)
            finally:
                if rec is not None:
                    self._harvest_spans(rec)

    def _harvest_spans(self, rec) -> None:
        """Derive the chunk/scatter histograms from the request's finished
        trace spans: the span timing is the single measurement, the metrics
        a bucketed view of it (so they populate while tracing is on)."""
        for sp in rec.find("chunk"):
            self._chunk_seconds.observe(
                sp.seconds, kernel=str(sp.attrs.get("kernel", "")),
                phase=str(sp.attrs.get("phase", "numeric")))
        for sp in rec.find("shard.scatter"):
            self._scatter_seconds.observe(
                sp.seconds, phase=str(sp.attrs.get("phase", "")))

    def _build_plan_cold(self, A, B, mask, algorithm, phases,
                         request) -> SymbolicPlan:
        """Cold plan build — the one place symbolic work happens.

        With a multi-worker shard pool and a store-keyed two-phase request,
        the symbolic pass itself runs row-partitioned across the pool
        (:meth:`ShardCoordinator.symbolic`) instead of serially in-process —
        previously only the *numeric* pass was sharded, leaving the cold
        path single-threaded. Ineligible or failing cases (ad-hoc operands,
        unshared segments, segment pressure) degrade to the serial
        :func:`build_plan`, same result either way.
        """
        if (self.shards is not None and self.shards.nshards > 1
                and request is not None and phases == 2):
            from ..core import registry as kernel_registry
            from ..shard import ShardError

            resolved = algorithm.lower()
            if resolved == "auto":
                resolved = kernel_registry.auto_select(A, B, mask)
            kernel_registry.get_spec(resolved)  # invalid names fail loudly
            try:
                row_sizes = self.shards.symbolic(
                    request.a, request.b, request.mask, mask,
                    (A.nrows, B.ncols), resolved)
                return SymbolicPlan(algorithm=resolved, phases=2,
                                    shape=(A.nrows, B.ncols),
                                    row_sizes=row_sizes)
            except (ShardError, OSError):
                # same degradation contract as the numeric path below
                self.shard_degraded = True
        return build_plan(A, B, mask, algorithm=algorithm, phases=phases)

    def _execute_traced(self, A, B, mask, a_fp, b_fp, mask_fp, *, algorithm,
                        phases, semiring, tag, request, value_fps,
                        trace_id: str) -> Response:
        t_start = time.perf_counter()
        stats = RequestStats(phases=phases, trace_id=trace_id)
        plan: SymbolicPlan | None = None

        key = plan_key(a_fp, b_fp, mask_fp, mask.complemented,
                       algorithm, phases, semiring.name)
        rkey = None
        if value_fps is not None:
            # result tier sits in front of the plan tier: a hit returns the
            # memoized CSR output with no plan lookup and no numeric pass
            rkey = result_key(key, *value_fps)
            with span("cache.lookup", cache="result"):
                with self._lock:
                    cached = self.results.get(rkey)
            if cached is not None:
                stats.algorithm = cached.algorithm
                stats.planned = algorithm.lower() not in BASELINE_KEYS
                stats.result_cache_hit = True
                stats.output_nnz = cached.matrix.nnz
                stats.total_seconds = time.perf_counter() - t_start
                with self._lock:
                    self.stats.record(stats)
                return Response(result=cached.matrix, stats=stats, tag=tag,
                                request=request)

        if algorithm.lower() in BASELINE_KEYS:
            # whole-matrix baselines have no symbolic phase to plan
            stats.algorithm = algorithm.lower()
            stats.planned = False
        else:
            with span("cache.lookup", cache="plan"):
                with self._lock:
                    plan = self.plans.get(key)
            if plan is not None:
                stats.plan_cache_hit = True
                stats.plan_reused = True
                stats.symbolic_skipped = phases == 2
            else:
                t0 = time.perf_counter()
                with span("symbolic.cold", algorithm=algorithm,
                          phases=phases):
                    plan = self._build_plan_cold(A, B, mask, algorithm,
                                                 phases, request)
                stats.plan_seconds = time.perf_counter() - t0
                with self._lock:
                    self.plans.put(key, plan)
            stats.algorithm = plan.algorithm
            from ..parallel.runner import uses_direct_write

            stats.direct_write = uses_direct_write(
                plan.algorithm, phases, self.executor,
                row_sizes_known=plan.row_sizes is not None)

        t0 = time.perf_counter()
        result = None
        with span("numeric",
                  kernel=plan.algorithm if plan is not None
                  else algorithm.lower()) as numeric_span:
            if (self.shards is not None and request is not None
                    and plan is not None and plan.row_sizes is not None
                    and self.shards.eligible(plan.algorithm, semiring)):
                from ..shard import ShardError

                try:
                    # store-keyed request on a fused kernel: numeric pass
                    # runs on the shard pool, workers scattering into a
                    # shared output CSR (multi-process direct write)
                    result = self.shards.multiply(
                        request.a, request.b, request.mask, mask, plan,
                        semiring, plan_cache_key=key)
                    stats.sharded = True
                    stats.direct_write = True
                except (ShardError, OSError):
                    # segment pressure / missing operand segment (incl. a
                    # worker's attach losing a race with re-registration,
                    # which surfaces as FileNotFoundError) / closed pool:
                    # degrade this request to the in-process path.
                    # Kernel-level errors (stale plan etc.) propagate — they
                    # would fail in-process identically and must stay loud
                    self.shard_degraded = True
            if result is None:
                result = masked_spgemm(A, B, mask, algorithm=algorithm,
                                       semiring=semiring, phases=phases,
                                       executor=self.executor, plan=plan)
            if numeric_span is not None:
                numeric_span.attrs["sharded"] = stats.sharded
        stats.numeric_seconds = time.perf_counter() - t0
        stats.total_seconds = time.perf_counter() - t_start
        stats.output_nnz = result.nnz
        flops = None
        if rkey is not None and self.results.min_flops_per_byte > 0:
            # admission estimate, computed outside the lock (O(nnz(A)))
            from ..core.expand import total_flops

            flops = total_flops(A, B)
        with self._lock:
            if rkey is not None:
                with span("cache.writeback"):
                    self.results.put(rkey, result,
                                     stats.algorithm or algorithm,
                                     flops=flops)
            self.stats.record(stats)
        return Response(result=result, stats=stats, tag=tag, request=request)

    # ------------------------------------------------------------------ #
    # plan persistence
    # ------------------------------------------------------------------ #
    def save_plans(self, path) -> int:
        """Persist every cached plan to an ``.npz`` plan store at ``path``.

        Returns the number of plans written. The file is keyed purely on
        content fingerprints, so any engine (this process or a future one)
        whose operands hash identically can :meth:`load_plans` it.
        """
        with self._lock:
            items = self.plans.items()
        return PlanStore(path).save(items)

    def load_plans(self, path) -> int:
        """Warm-start the plan cache from a persisted store; returns the
        number of plans restored. Restored plans behave exactly like locally
        built ones: the first matching request is already a hit and skips
        auto-select and (for 2P) the whole symbolic pass."""
        loaded = PlanStore(path).load()
        with self._lock:
            for key, plan in loaded:
                self.plans.put(key, plan)
        return len(loaded)
