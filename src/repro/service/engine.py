"""The execution engine: stateful masked-SpGEMM with plan and result caching.

``Engine`` turns the one-shot :func:`repro.core.masked_spgemm` call into a
service: operands live in a :class:`~repro.service.store.MatrixStore`,
symbolic plans live in a :class:`~repro.service.plan.PlanCache`, full numeric
results (optionally) in a :class:`~repro.service.result_cache.ResultCache`,
and every product goes through :meth:`Engine.submit` (store-keyed requests)
or :meth:`Engine.multiply` (ad-hoc operands, used by the iterative
algorithms).

Execution of one request:

1. resolve operands and fingerprint their patterns (store entries memoize
   the hash; ad-hoc operands pay it per call — O(nnz), far below a product);
2. when a result cache is attached (store-keyed requests only), probe it
   under the plan key extended with both operands' *value* hashes. Hit →
   return the memoized CSR output, bit-identical by construction, no plan
   lookup, no numeric pass;
3. look up the plan under the full structural key. Warm hit → skip both
   ``auto_select`` and (for two-phase) the entire symbolic pass by handing
   the cached plan to ``masked_spgemm(plan=...)``. Miss →
   :func:`repro.core.plan.build_plan` once, cache, proceed;
4. numeric pass (optionally row-parallel via the engine's executor). Warm
   two-phase requests on a chunk-fused kernel take the *direct-write* path
   (``RequestStats.direct_write``): the plan's row sizes preallocate the
   final CSR arrays and chunks scatter into disjoint slices with zero
   stitch copies, the computed sizes validated against the plan so a stale
   plan fails loudly instead of silently corrupting output.

Warm plans can also outlive the process: :meth:`Engine.save_plans` persists
the plan cache through :class:`~repro.service.plan.PlanStore` and
:meth:`Engine.load_plans` restores it, so a restarted service starts with
every previously-seen pattern already planned (``python -m repro serve
--plans``).

The engine is thread-safe (one lock around store/cache metadata; numeric
work runs outside it), which is what lets
:class:`~repro.service.batch.BatchExecutor` fan requests across a thread
pool and :class:`~repro.service.server.AsyncServer` drain its admission
queue from multiple workers.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque

import numpy as np

from ..core import masked_spgemm
from ..core.plan import SymbolicPlan, build_plan, splice_plan
from ..delta import DeltaBatch, DeltaOutcome
from ..errors import AlgorithmError, ShapeError
from ..core.registry import BASELINE_KEYS, NATIVE_BASE
from ..mask import Mask
from ..native import warmup as native_warmup
from ..obs import FlightRecorder, MetricsRegistry, SLOEvaluator, Tracer, span
from ..obs.metrics import CHUNK_BUCKETS, chunk_observer
from ..resilience import (CircuitBreaker, DeadlineExceeded, FaultPlan,
                          InjectedFault, RetryPolicy, apply_fault,
                          resolve_deadline)
from ..semiring import Semiring
from ..semiring.standard import by_name as semiring_by_name
from ..sparse.csr import CSRMatrix
from ..core import registry as kernel_registry
from ..sparse.ops import (pattern_fingerprint, rows_affected_through,
                          rows_touching, splice_result_rows,
                          value_fingerprint)
from ..validation import INDEX_DTYPE
from .plan import PlanCache, PlanStore, plan_key
from .requests import DeltaRequest, Request, RequestStats, Response
from .result_cache import ResultCache, result_key
from .store import MatrixStore, StoreError


#: coarse execution tiers a numeric pass can run on, in preference order
KERNEL_TIERS = ("native", "fused", "loop", "baseline")


def kernel_tier(algorithm: str) -> str:
    """Map a resolved kernel key to the coarse execution tier it runs on:
    ``native`` (compiled msa-native/hash-native), ``loop`` (the per-row
    reference rung), ``baseline`` (whole-matrix baselines), else ``fused``
    (the vectorised numpy kernels). The engine stamps the tier of the
    kernel that *actually executed* — not the one the plan named — onto
    each request, so degraded-to-fused traffic is distinguishable in
    ``repro_kernel_requests_total`` and the ``serve --smoke`` report."""
    key = algorithm.lower()
    if key.endswith("-native"):
        return "native"
    if key.endswith("-loop"):
        return "loop"
    if key in BASELINE_KEYS:
        return "baseline"
    return "fused"


class EngineStats:
    """Aggregate engine telemetry, **derived from** the metrics registry.

    Historically this was a parallel set of plain counters updated next to
    the registry; now the registry (``repro_engine_requests_total{tier}``,
    ``repro_engine_events_total{event}``, ``repro_request_seconds{tier}``,
    ``repro_phase_seconds{phase}``) is the single source of truth and every
    attribute here is a read-only view over it, so ``/metrics`` and
    ``engine.stats`` can never disagree. The serving **tier** of a request
    is where it was answered: ``result`` (whole numeric output from the
    result cache), ``warm`` (plan-cache hit), ``cold`` (plan built), or
    ``unplanned`` (baselines — no symbolic phase, excluded from plan
    hit/miss accounting).

    The latency deques are the one thing kept *outside* the registry:
    histograms give bucketed distributions for scraping, while percentile
    reporting (``repro serve`` summaries, bench faces) wants the raw recent
    window. Bounded, same rationale as before.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter(
            "repro_engine_requests_total",
            "requests by serving tier (result/warm/cold/unplanned)",
            labels=("tier",))
        self._events = self.registry.counter(
            "repro_engine_events_total",
            "request-path events (symbolic_skipped/sharded/direct_write)",
            labels=("event",))
        self._request_seconds = self.registry.histogram(
            "repro_request_seconds",
            "end-to-end engine request latency by serving tier",
            labels=("tier",))
        self._phase_seconds = self.registry.histogram(
            "repro_phase_seconds",
            "engine time by phase (plan = auto-select + symbolic)",
            labels=("phase",))
        self._kernel_tier = self.registry.counter(
            "repro_kernel_requests_total",
            "numeric passes by the kernel tier that actually executed "
            "(native/fused/loop/baseline); degraded requests count under "
            "the tier that served them, not the one the plan named",
            labels=("tier",))
        #: bounded windows (a long-lived service must not grow telemetry
        #: without limit); the registry covers the full lifetime
        self.cold_latencies: deque = deque(maxlen=4096)
        self.warm_latencies: deque = deque(maxlen=4096)
        self.result_latencies: deque = deque(maxlen=4096)

    # -- registry-derived views ----------------------------------------- #
    @property
    def requests(self) -> int:
        return int(self._requests.total())

    @property
    def plan_hits(self) -> int:
        return int(self._requests.value(tier="warm"))

    @property
    def plan_misses(self) -> int:
        return int(self._requests.value(tier="cold"))

    @property
    def unplanned(self) -> int:
        """Baseline requests — never planned, excluded from hit/miss."""
        return int(self._requests.value(tier="unplanned"))

    @property
    def result_hits(self) -> int:
        """Requests served whole from the result cache (no plan lookup, no
        numeric pass) — also excluded from plan hit/miss accounting."""
        return int(self._requests.value(tier="result"))

    @property
    def symbolic_skipped(self) -> int:
        return int(self._events.value(event="symbolic_skipped"))

    @property
    def sharded(self) -> int:
        """Numeric passes executed on the shard-worker pool (shared-memory
        direct write); the complement ran in-process."""
        return int(self._events.value(event="sharded"))

    @property
    def plan_seconds(self) -> float:
        return self._phase_seconds.sum(phase="plan")

    @property
    def numeric_seconds(self) -> float:
        return self._phase_seconds.sum(phase="numeric")

    @property
    def plan_hit_rate(self) -> float:
        from ..bench.metrics import hit_rate

        return hit_rate(self.plan_hits, self.plan_misses)

    @property
    def kernel_tiers(self) -> dict:
        """Non-zero ``repro_kernel_requests_total`` values by tier — which
        kernel tier actually served the numeric passes (result-cache hits
        ran no kernel and are excluded)."""
        counts = {t: int(self._kernel_tier.value(tier=t))
                  for t in KERNEL_TIERS}
        return {t: c for t, c in counts.items() if c}

    def record(self, stats: RequestStats) -> None:
        if stats.result_cache_hit:
            # the plan cache was never consulted; keep its accounting clean
            self._requests.inc(tier="result")
            self._request_seconds.observe(stats.total_seconds, tier="result")
            self.result_latencies.append(stats.total_seconds)
            return
        if not stats.planned:
            tier = "unplanned"  # baselines can never warm; keep them out
        elif stats.plan_cache_hit:
            tier = "warm"
            self.warm_latencies.append(stats.total_seconds)
        else:
            tier = "cold"
            self.cold_latencies.append(stats.total_seconds)
        self._requests.inc(tier=tier)
        self._request_seconds.observe(stats.total_seconds, tier=tier)
        if stats.kernel_tier:
            self._kernel_tier.inc(tier=stats.kernel_tier)
        if stats.symbolic_skipped:
            self._events.inc(event="symbolic_skipped")
        if stats.sharded:
            self._events.inc(event="sharded")
        if stats.direct_write:
            self._events.inc(event="direct_write")
        if stats.plan_seconds:
            self._phase_seconds.observe(stats.plan_seconds, phase="plan")
        self._phase_seconds.observe(stats.numeric_seconds, phase="numeric")


class Engine:
    """Batched masked-SpGEMM execution engine with symbolic plan caching.

    Parameters
    ----------
    store, plan_cache : pre-built components (defaults constructed from the
        keyword knobs below).
    budget_bytes : operand-memory budget for the default store (LRU evicted).
    plan_capacity : max cached plans for the default cache.
    result_cache : optional :class:`ResultCache` memoizing whole numeric
        results for store-keyed requests (``result_cache_bytes`` builds a
        default-configured one). Off by default: ad-hoc/iterative traffic
        changes values every call, so only serving-style deployments should
        pay the per-request value hash.
    executor : optional :mod:`repro.parallel` executor used for the numeric
        pass of every request (row parallelism *within* a product;
        :class:`BatchExecutor` adds parallelism *across* products).
    shards : optional shard-worker pool size. When set (and shared memory is
        usable — see :func:`repro.shard.shared_memory_available`), operands
        are mirrored into shared-memory segments at registration and every
        eligible request's numeric pass runs on a persistent
        :class:`~repro.shard.ShardCoordinator` pool, each worker scattering
        its row range straight into a shared output CSR
        (``RequestStats.sharded``). Ineligible requests (baselines,
        non-direct-write kernels, custom semirings) and environments without
        shared memory degrade to the in-process path —
        :attr:`shard_degraded` reports the latter.
    result_admit_flops_per_byte : admission threshold for the default result
        cache (see :class:`ResultCache`): results estimated to save fewer
        flops per cached byte are not admitted. 0 admits everything.
    metrics : optional shared :class:`~repro.obs.MetricsRegistry` (a private
        one by default). The engine's own counters, both caches' counters,
        and (via :class:`~repro.service.server.AsyncServer`) the server's
        all land in this registry — one ``/metrics`` page per engine.
    tracer : optional shared :class:`~repro.obs.Tracer`; ``tracing`` builds
        the default one enabled/disabled. Every request executes under its
        own trace record (id on ``RequestStats.trace_id``) holding the
        phase spans; disabled tracing reduces every ``span()`` on the path
        to a no-op contextvar read (the <3% overhead gate in
        ``benchmarks/bench_obs_overhead.py`` measures enabled vs that).
    retry : :class:`~repro.resilience.RetryPolicy` for the shard tier
        (bounded attempts + seeded exponential backoff; the default policy
        retries once). Failed attempts degrade down the tier ladder —
        shards → in-process fused → per-row loop kernels — every rung
        bit-identical.
    breaker : :class:`~repro.resilience.CircuitBreaker` guarding the shard
        tier: after N consecutive pool failures requests route straight to
        the in-process tier (no scatter, no per-request failure tax) until
        a half-open probe succeeds.
    faults : :class:`~repro.resilience.FaultPlan` chaos seam — defaults to
        ``FaultPlan.from_env()`` (the ``REPRO_FAULTS`` variable), so the CI
        chaos leg can inject worker kills into an unmodified server.
    slos : optional list of :class:`~repro.obs.SLObjective` (what ``serve
        --slo p99=50ms:0.99`` parses). When given, the engine owns an
        :class:`~repro.obs.SLOEvaluator` (``engine.slo``) exporting
        ``repro_slo_*`` burn-rate families over this registry and backing
        the sidecar's ``/slo`` endpoint.
    flight : optional :class:`~repro.obs.FlightRecorder`; the engine builds
        its own by default (ring of request summaries + debug-bundle
        capture whenever a resilience edge fires — retry exhaustion,
        degrade, breaker trip, deadline shed), wired with a context probe
        reporting live breaker/pool/cache state into each bundle.
    """

    def __init__(self, store: MatrixStore | None = None,
                 plan_cache: PlanCache | None = None, *,
                 budget_bytes: int | None = None,
                 plan_capacity: int = 256,
                 result_cache: ResultCache | None = None,
                 result_cache_bytes: int | None = None,
                 result_admit_flops_per_byte: float = 0.0,
                 executor=None,
                 shards: int | None = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 tracing: bool = True,
                 retry: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 faults: FaultPlan | None = None,
                 slos: list | None = None,
                 flight: FlightRecorder | None = None):
        self.store = store if store is not None else MatrixStore(budget_bytes)
        self.plans = plan_cache if plan_cache is not None else PlanCache(plan_capacity)
        if result_cache is None and result_cache_bytes is not None:
            result_cache = ResultCache(
                result_cache_bytes,
                min_flops_per_byte=result_admit_flops_per_byte)
        self.results = result_cache
        self.executor = executor
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=tracing)
        self.stats = EngineStats(self.metrics)
        # single source of truth for cache accounting: both caches' counters
        # live in the engine registry (satellite of the obs PR)
        self.plans.bind_metrics(self.metrics)
        if self.results is not None:
            self.results.bind_metrics(self.metrics)
        self._chunk_seconds = self.metrics.histogram(
            "repro_chunk_seconds",
            "per-chunk kernel wall time (recorded at the runner/worker "
            "call sites; populated with tracing on or off)",
            labels=("kernel", "phase"), buckets=CHUNK_BUCKETS)
        self._scatter_seconds = self.metrics.histogram(
            "repro_shard_scatter_seconds",
            "coordinator-side shard fan-out wall time (recorded at the "
            "coordinator call site; populated with tracing on or off)",
            labels=("phase",))
        self._trace_seq = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False
        # resilience: retry/degrade ladder, breaker, chaos seam (PR 7)
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self.breaker.bind_metrics(self.metrics)
        # diagnosis layer (PR 10): burn-rate SLOs over this registry, and a
        # flight recorder capturing debug bundles on resilience edges
        self.slo = (SLOEvaluator(self.metrics, list(slos),
                                 tracer=self.tracer)
                    if slos else None)
        self.flight = (flight if flight is not None else
                       FlightRecorder(registry=self.metrics,
                                      tracer=self.tracer,
                                      context=self._flight_context))
        self._retries = self.metrics.counter(
            "repro_retries_total",
            "same-tier retry attempts by tier and outcome",
            labels=("tier", "outcome"))
        self._degraded = self.metrics.counter(
            "repro_degraded_total",
            "tier downgrades from → to (results stay bit-identical)",
            labels=("from", "to"))
        self._deadline_total = self.metrics.counter(
            "repro_deadline_total",
            "requests shed by deadline, by enforcement stage",
            labels=("stage",))
        # delta serving (PR 8): mutation counters + dirty-row economics
        self._delta_total = self.metrics.counter(
            "repro_delta_total",
            "applied edge-delta batches by kind "
            "(value/pattern/mixed/noop)",
            labels=("kind",))
        self._delta_dirty_fraction = self.metrics.histogram(
            "repro_delta_dirty_fraction",
            "fraction of the mutated matrix's rows a pattern delta "
            "dirtied (the re-planned share)",
            buckets=(0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0))
        self._delta_plans = self.metrics.counter(
            "repro_delta_plans_total",
            "cached plans affected by pattern deltas, by outcome "
            "(spliced onto the new fingerprint / skipped: operands "
            "unresolvable from the store)",
            labels=("outcome",))
        self._delta_patched = self.metrics.counter(
            "repro_delta_results_patched_total",
            "cached numeric results carried across a pattern delta by "
            "recomputing only their dirty output rows")
        self._delta_stale = self.metrics.counter(
            "repro_delta_stale_total",
            "late result-cache writebacks refused by the store-version "
            "guard (a delta landed while the request executed)")
        # resolve + compile the native kernel tier off the request path
        # (memoized: only the first engine in a process pays the JIT/cc
        # cost) and record it — done *before* the shard pool forks so the
        # workers inherit the compiled backend instead of re-probing
        native_warmup(metrics=self.metrics)
        self.shards = None
        self.shard_degraded = False
        if shards:
            from ..shard import ShardCoordinator, shared_memory_available

            if shared_memory_available():
                self.shards = ShardCoordinator(
                    shards, faults=self.faults,
                    chunk_observer=self._observe_chunk,
                    scatter_observer=self._observe_scatter)
                store_ref = self.shards.store
                self.metrics.gauge(
                    "repro_shm_segment_bytes",
                    "bytes held in shared-memory operand segments",
                    callback=lambda: store_ref.shared_bytes)
                pool_ref = self.shards.segment_pool
                self.metrics.gauge(
                    "repro_segment_pool_segments",
                    "recycled output segments currently free in the "
                    "coordinator's size-classed pool",
                    callback=lambda: pool_ref.stats["held"])
                self.metrics.gauge(
                    "repro_segment_pool_bytes",
                    "bytes pinned by free pooled output segments "
                    "(bounded per size class and in total)",
                    callback=lambda: pool_ref.stats["held_bytes"])
            else:
                self.shard_degraded = True

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release owned multi-process resources: terminate the shard pool
        and unlink every shared-memory segment. Idempotent, and safe (a
        no-op) on engines without sharding — callers can put it in a
        ``finally`` unconditionally. The executor is caller-owned and stays
        open."""
        self._closed = True
        coord, self.shards = self.shards, None
        if coord is not None:
            coord.close()

    def ready(self) -> bool:
        """Readiness probe backing ``/readyz``: can this engine serve?

        A tripped breaker or a degraded shard tier still counts as ready —
        requests serve bit-identically from the in-process tiers; only a
        closed engine refuses work."""
        return not self._closed

    def _heal_shards(self) -> None:
        """Self-heal after a worker death: respawn the pool and re-share
        any operand segments that died with it from the in-process store
        (the coordinator can only detect missing segments; the engine holds
        the original matrices)."""
        if self.shards is None:
            return
        from ..shard import ShardError

        try:
            missing = self.shards.heal()
        except (ShardError, OSError):
            return  # still broken; the next attempt degrades in-process
        for key in missing:
            with self._lock:
                entry = (self.store.entry(key)
                         if key in self.store else None)
            try:
                if entry is not None:
                    self.shards.share(key, entry.value)
                else:
                    # not in the in-process store either: drop the stale
                    # handle so lookups fail fast as SegmentMissing
                    self.shards.evict(key)
            except (ShardError, OSError):
                self.shard_degraded = True

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # store facade
    # ------------------------------------------------------------------ #
    def register(self, key: str, value: CSRMatrix | Mask, *,
                 pin: bool = False) -> None:
        """Register (or replace) an operand/mask under ``key``.

        Plans need no explicit invalidation: they are keyed by pattern
        fingerprint, so a replacement with the same pattern keeps hitting
        and a pattern change misses by construction.
        """
        with self._lock:
            entry = self.store.register(key, value, pin=pin)
        # warm the memoized hashes now, outside the lock: first-touch
        # O(nnz) hashing on the request path would otherwise run under the
        # lock and stall every concurrent submitter (and, through
        # Engine.entry, the async server's admission loop)
        entry.fingerprint
        if self.results is not None:
            entry.value_fingerprint
        if self.shards is not None:
            from ..shard import ShardError

            try:
                self.shards.share(key, value)
            except ShardError:
                # no segment headroom for this operand: it simply serves
                # in-process (requests naming it fall back per-request)
                self.shard_degraded = True
            # reconcile with the in-process store's byte-budget LRU: any
            # operand it silently evicted during this register must drop
            # its shared segment too, or /dev/shm grows without bound
            # under operand churn
            with self._lock:
                evicted = [k for k in self.shards.store.keys()
                           if k not in self.store]
            for k in evicted:
                self.shards.evict(k)

    def evict(self, key: str) -> bool:
        if self.shards is not None:
            self.shards.evict(key)
        with self._lock:
            return self.store.evict(key)

    def entry(self, key: str):
        """Thread-safe store-entry resolution (marks the entry MRU).

        External callers must come through here rather than touching
        ``engine.store`` directly: the store's LRU bookkeeping is a
        pop-then-reinsert that is only safe under the engine lock.
        """
        with self._lock:
            return self.store.entry(key)

    # ------------------------------------------------------------------ #
    # deltas (streaming-graph mutation; see repro.delta)
    # ------------------------------------------------------------------ #
    def submit_delta(self, request: DeltaRequest) -> DeltaOutcome:
        """Apply a store-keyed :class:`DeltaRequest` (the JSON wire form)."""
        return self.apply_delta(request.key, request.to_batch())

    def apply_delta(self, key: str, batch: DeltaBatch) -> DeltaOutcome:
        """Mutate the matrix registered under ``key`` by one edge-delta
        batch, keeping warm-path economics across the mutation.

        * **value-only** batches (updates / inserts landing on stored
          coordinates): the store entry is swapped copy-on-write with the
          *pattern fingerprint carried forward* — every cached plan keeps
          hitting — and only the value fingerprint is recomputed;
        * **pattern** batches: the exact dirty row set comes back from
          :meth:`DeltaBatch.apply`; every cached plan whose key names the
          old fingerprint is re-keyed onto the new one via
          :func:`~repro.core.plan.splice_plan` — the symbolic pass re-runs
          over only the dirty rows (for the B-operand slot, over the rows
          *reading* the dirty rows) — and the shard planner's memoized
          partition is re-derived for the new key without a fresh balance
          pass;
        * in both cases, result-cache entries that read the old content are
          invalidated by fingerprint scan, and the entry's version bump
          arms the writeback guard against in-flight requests.

        Concurrent deltas to the *same* key must be serialized by the
        caller (:meth:`AsyncServer.apply_delta` orders them against each
        other and against in-flight reads); concurrent deltas to different
        keys and concurrent submits are safe.
        """
        t_start = time.perf_counter()
        entry = self.entry(key)
        value = entry.value
        if not isinstance(value, CSRMatrix):
            raise StoreError(
                f"deltas apply to CSR matrices; {key!r} holds a "
                f"{type(value).__name__}")
        old_pattern_fp = entry.fingerprint
        old_value_fp = entry.value_fingerprint
        with span("delta.apply", key=key, edges=len(batch)):
            outcome = batch.apply(value)
        if outcome.kind == "noop":
            self._delta_total.inc(kind="noop")
            return DeltaOutcome(key=key, kind="noop",
                                pattern_fingerprint=old_pattern_fp,
                                value_fingerprint=old_value_fp,
                                seconds=time.perf_counter() - t_start)
        new = outcome.matrix
        # re-fingerprint incrementally, outside the lock: the pattern hash
        # is carried forward when the pattern did not change
        new_pattern_fp = (pattern_fingerprint(new.indptr, new.indices,
                                              new.shape)
                          if outcome.pattern_changed else old_pattern_fp)
        new_value_fp = value_fingerprint(new.data)
        splices: list[tuple] = []
        skipped = 0
        vfp_map: dict = {}
        if outcome.pattern_changed and new_pattern_fp != old_pattern_fp:
            splices, skipped, vfp_map = self._splice_plans(
                old_pattern_fp, new_pattern_fp, new, outcome.dirty_rows,
                outcome.changed_keys)
        patches: list[tuple] = []
        if self.results is not None and splices and outcome.kind == "pattern":
            patches = self._patch_results(splices, vfp_map, old_pattern_fp,
                                          old_value_fp, new_value_fp)
        invalidated = 0
        with self._lock:
            self.store.swap(key, new, fingerprint=new_pattern_fp,
                            value_fingerprint=new_value_fp)
            for _, new_key, plan, *_rest in splices:
                self.plans.put(new_key, plan)
            if self.results is not None:
                stale_fps = {old_value_fp}
                if outcome.pattern_changed:
                    stale_fps.add(old_pattern_fp)
                invalidated = self.results.invalidate_fingerprints(stale_fps)
                # patched entries go in *after* the invalidation scan: their
                # keys name only post-delta fingerprints of the mutated
                # matrix, but an unrelated operand may share a value hash
                # with the old content (e.g. two all-ones patterns)
                for rkey, matrix, alg in patches:
                    self.results.put(rkey, matrix, alg)
        if self.shards is not None:
            from ..shard import ShardError

            try:
                self.shards.share(key, new)
            except (ShardError, OSError):
                self.shard_degraded = True
            # dirty-range shard re-planning: carry each spliced plan's row
            # boundaries to its new key (nnz offsets recomputed inside)
            for old_key, new_key, plan, *_rest in splices:
                self.shards.planner.resplit(old_key, new_key, plan)
        dirty = int(outcome.dirty_rows.size)
        frac = dirty / max(value.nrows, 1)
        self._delta_total.inc(kind=outcome.kind)
        if outcome.pattern_changed:
            self._delta_dirty_fraction.observe(frac)
        if splices:
            self._delta_plans.inc(len(splices), outcome="spliced")
        if skipped:
            self._delta_plans.inc(skipped, outcome="skipped")
        if patches:
            self._delta_patched.inc(len(patches))
        return DeltaOutcome(key=key, kind=outcome.kind, dirty_rows=dirty,
                            dirty_fraction=frac,
                            plans_spliced=len(splices), plans_skipped=skipped,
                            results_invalidated=invalidated,
                            results_patched=len(patches),
                            pattern_fingerprint=new_pattern_fp,
                            value_fingerprint=new_value_fp,
                            seconds=time.perf_counter() - t_start)

    def _splice_plans(self, old_fp: str, new_fp: str, new: CSRMatrix,
                      dirty_rows, changed_keys) -> tuple[list, int, dict]:
        """Re-key every cached plan naming ``old_fp`` onto ``new_fp`` by
        splicing the dirty rows (see :func:`splice_plan`). Old-key entries
        are left in place: the old pattern may still exist under another
        store key, and content-addressed keys make stale entries harmless
        (they age out of the LRU). Returns ``(splices, skipped, vfp_map)``
        where each splice is ``(old_key, new_key, plan, dirty, A, B, mask)``
        — the extra fields feed :meth:`_patch_results` — and ``vfp_map``
        maps pattern fingerprint → value fingerprint of the store entry the
        operand resolution picked (consistent with the resolved values, so
        result-cache lookups built from it name the same content)."""
        with self._lock:
            plan_items = self.plans.items()
            store_items = self.store.entries()
        # fingerprint → current value map for resolving the *other* operand
        # slots of affected plans (fingerprints are memoized on entries;
        # first-touch hashing here is idempotent, same as submit())
        fp_map: dict[str, CSRMatrix | Mask] = {}
        vfp_map: dict[str, str] = {}
        for _, e in store_items:
            if e.fingerprint not in fp_map:
                fp_map[e.fingerprint] = e.value
                if self.results is not None:
                    vfp_map[e.fingerprint] = e.value_fingerprint
        fp_map[new_fp] = new
        splices: list[tuple] = []
        skipped = 0
        for pkey, plan in plan_items:
            a_fp, b_fp, m_fp = pkey[0], pkey[1], pkey[2]
            if old_fp not in (a_fp, b_fp, m_fp):
                continue
            sub = lambda fp: new_fp if fp == old_fp else fp
            new_key = (sub(a_fp), sub(b_fp), sub(m_fp)) + pkey[3:]
            A = fp_map.get(sub(a_fp))
            B = fp_map.get(sub(b_fp))
            M = fp_map.get(sub(m_fp))
            if (not isinstance(A, CSRMatrix) or not isinstance(B, CSRMatrix)
                    or M is None):
                skipped += 1
                continue
            mask = M if isinstance(M, Mask) else Mask.from_matrix(M)
            complemented = pkey[3]
            if complemented:
                mask = mask.complement()
            parts = []
            if a_fp == old_fp or m_fp == old_fp:
                # left-operand / mask rows map 1:1 onto output rows
                parts.append(np.asarray(dirty_rows, dtype=INDEX_DTYPE))
            if b_fp == old_fp:
                if complemented:
                    # conservative: any output row reading a dirty B row
                    # (the sharpened test below assumes the mask pattern
                    # *admits*, which a complemented mask inverts)
                    parts.append(rows_touching(A, dirty_rows))
                else:
                    # sharpened B-side propagation: a changed B entry (j, c)
                    # affects output row i only when A[i, j] is stored AND
                    # the mask admits c in row i — for self-products this is
                    # each changed edge's common-neighbor set, not the whole
                    # neighborhood
                    parts.append(rows_affected_through(
                        A, mask.indptr, mask.indices, changed_keys,
                        new.ncols))
            dirty = (np.unique(np.concatenate(parts)) if parts
                     else np.empty(0, dtype=INDEX_DTYPE))
            try:
                with span("delta.splice", rows=int(dirty.size),
                          algorithm=plan.algorithm):
                    spliced = splice_plan(plan, A, B, mask, dirty)
            except (AlgorithmError, ShapeError):
                # shape drift (an operand re-registered at another shape
                # shares no fingerprints, but stay defensive): drop, a cold
                # build will serve the new key
                skipped += 1
                continue
            splices.append((pkey, new_key, spliced, dirty, A, B, mask))
        return splices, skipped, vfp_map

    def _patch_results(self, splices: list, vfp_map: dict, old_fp: str,
                       old_value_fp: str, new_value_fp: str) -> list:
        """Carry cached numeric results across a pure-pattern delta.

        For each spliced plan whose pre-delta product is resident in the
        result cache, recompute *only the dirty output rows* with the plan's
        kernel and splice them into the cached matrix
        (:func:`~repro.sparse.ops.splice_result_rows`) — the first
        post-delta request then serves from the result tier instead of
        re-running the full numeric pass. Sound because the splice dirty set
        covers every output row whose pattern **or values** can differ: the
        1:1 slots map changed rows directly, and the B-side candidate test
        admits exactly the (row, col) cells a changed B entry can reach
        through the mask. Only called for ``kind == "pattern"`` batches —
        a mixed batch's value updates touch rows outside the dirty set.
        """
        patches = []
        for pkey, new_key, plan, dirty, A, B, mask in splices:
            old_a_vfp = (old_value_fp if pkey[0] == old_fp
                         else vfp_map.get(pkey[0]))
            old_b_vfp = (old_value_fp if pkey[1] == old_fp
                         else vfp_map.get(pkey[1]))
            if old_a_vfp is None or old_b_vfp is None:
                continue
            old_rkey = result_key(pkey, old_a_vfp, old_b_vfp)
            if old_rkey not in self.results:
                continue
            cached = self.results.get(old_rkey)
            new_a_vfp = new_value_fp if pkey[0] == old_fp else old_a_vfp
            new_b_vfp = new_value_fp if pkey[1] == old_fp else old_b_vfp
            new_rkey = result_key(new_key, new_a_vfp, new_b_vfp)
            try:
                if dirty.size:
                    spec = kernel_registry.get_spec(plan.algorithm)
                    semiring = semiring_by_name(pkey[6])
                    with span("delta.patch", rows=int(dirty.size),
                              algorithm=plan.algorithm):
                        block = spec.numeric(A, B, mask, semiring, dirty)
                        patched = splice_result_rows(
                            cached.matrix, dirty, block.sizes, block.cols,
                            block.vals)
                else:
                    # empty dirty set: the product is bit-identical, only
                    # its key moves
                    patched = cached.matrix
            except (AlgorithmError, ShapeError, KeyError):
                continue
            patches.append((new_rkey, patched, cached.algorithm))
        return patches

    # ------------------------------------------------------------------ #
    def submit(self, request: Request) -> Response:
        """Execute one store-keyed request."""
        with self._lock:
            a_entry = self.store.entry(request.a)
            b_entry = self.store.entry(request.b)
            mask_entry = (self.store.entry(request.mask)
                          if request.mask is not None else None)
        # fingerprints are read outside the lock: register() pre-warms them,
        # but a first touch here (entries registered via a bare store) is
        # O(nnz) hashing — memoized on the entry, so a racing duplicate
        # compute is idempotent and harmless
        a_fp = a_entry.fingerprint
        b_fp = b_entry.fingerprint
        # value hashes are only worth computing when a result cache is
        # attached; store entries memoize them per registration
        value_fps = ((a_entry.value_fingerprint, b_entry.value_fingerprint)
                     if self.results is not None else None)
        A, B = a_entry.value, b_entry.value
        if not isinstance(A, CSRMatrix) or not isinstance(B, CSRMatrix):
            from .store import StoreError

            raise StoreError(
                f"operands {request.a!r}/{request.b!r} must be CSR matrices "
                f"(masks can only appear in the mask slot)"
            )
        mask = self._resolve_mask(mask_entry.value if mask_entry else None,
                                  (A.nrows, B.ncols), request.complemented)
        mask_fp = (mask_entry.fingerprint if mask_entry
                   else pattern_fingerprint(mask.indptr, mask.indices, mask.shape))
        # store-version snapshot for the writeback guard: entry versions are
        # immutable per entry object (deltas swap in a fresh entry), so the
        # snapshot pins exactly the operand state this request resolved
        versions = ((request.a, a_entry.version), (request.b, b_entry.version))
        if mask_entry is not None:
            versions += ((request.mask, mask_entry.version),)
        return self._execute(A, B, mask, a_fp, b_fp, mask_fp,
                             algorithm=request.algorithm,
                             phases=request.phases,
                             semiring=semiring_by_name(request.semiring),
                             tag=request.tag, request=request,
                             value_fps=value_fps, versions=versions,
                             plan_free=request.plan_free)

    def multiply(self, A: CSRMatrix, B: CSRMatrix,
                 mask: Mask | CSRMatrix | None = None, *,
                 algorithm: str = "auto", phases: int = 2,
                 semiring: Semiring | str = "plus_times",
                 complemented: bool = False, tag: str = "",
                 plan_free: bool = False) -> Response:
        """Execute an ad-hoc product through the plan cache (no store keys).

        This is the entry point the iterative algorithms use: operands are
        fresh objects every iteration, but iterations whose *patterns*
        repeat (k-truss re-queried on the same graph, MCL's stabilized
        support) still hit cached plans.
        """
        if isinstance(semiring, str):
            semiring = semiring_by_name(semiring)
        out_shape = (A.nrows, B.ncols)
        mask_obj = mask
        mask = self._resolve_mask(mask, out_shape, complemented)
        a_fp = pattern_fingerprint(A.indptr, A.indices, A.shape)
        b_fp = (a_fp if B is A
                else pattern_fingerprint(B.indptr, B.indices, B.shape))
        # iterative algorithms often pass the same matrix as operand and
        # mask (k-truss: C ⊙ (C·C)) — reuse its fingerprint instead of
        # re-hashing the pattern
        if mask_obj is A:
            mask_fp = a_fp
        elif mask_obj is B:
            mask_fp = b_fp
        else:
            mask_fp = pattern_fingerprint(mask.indptr, mask.indices,
                                          mask.shape)
        return self._execute(A, B, mask, a_fp, b_fp, mask_fp,
                             algorithm=algorithm, phases=phases,
                             semiring=semiring, tag=tag, request=None,
                             plan_free=plan_free)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_mask(mask, out_shape, complemented: bool) -> Mask:
        if mask is None:
            if complemented:
                # ¬(full mask) selects nothing — always-empty output; this
                # is a forgotten mask key, not a meaningful request
                raise AlgorithmError(
                    "complemented=True without a mask would mask out every "
                    "entry; provide the mask to complement"
                )
            mask = Mask.full(out_shape)
        elif isinstance(mask, CSRMatrix):
            mask = Mask.from_matrix(mask)
        if complemented:
            mask = mask.complement()
        return mask

    def _execute(self, A, B, mask, a_fp, b_fp, mask_fp, *, algorithm,
                 phases, semiring, tag, request,
                 value_fps: tuple[str, str] | None = None,
                 versions: tuple | None = None,
                 plan_free: bool = False) -> Response:
        trace_id = (f"r{next(self._trace_seq):06d}"
                    if self.tracer.enabled else "")
        with self.tracer.trace(trace_id, tag=tag, algorithm=algorithm,
                               phases=phases) as rec:
            with chunk_observer(self._observe_chunk):
                try:
                    resp = self._execute_traced(
                        A, B, mask, a_fp, b_fp, mask_fp, algorithm=algorithm,
                        phases=phases, semiring=semiring, tag=tag,
                        request=request, value_fps=value_fps,
                        trace_id=trace_id, versions=versions,
                        plan_free=plan_free)
                except DeadlineExceeded as exc:
                    self._deadline_total.inc(stage=exc.stage or "engine")
                    if rec is not None:
                        rec.attrs["outcome"] = "deadline"
                    self._flight_capture(
                        "deadline",
                        detail=f"stage={exc.stage or 'engine'} tag={tag}",
                        record=rec)
                    raise
                except Exception as exc:
                    if rec is not None:
                        rec.attrs["outcome"] = f"error:{type(exc).__name__}"
                    raise
            if rec is not None:
                rec.attrs["outcome"] = "ok"
                rec.attrs["tier"] = resp.stats.serving_tier
                if resp.stats.kernel_tier:
                    rec.attrs["kernel_tier"] = resp.stats.kernel_tier
            return resp

    # ------------------------------------------------------------------ #
    # call-site observation + flight capture
    # ------------------------------------------------------------------ #
    def _observe_chunk(self, seconds: float, kernel: str, phase: str,
                      trace_id: str | None = None) -> None:
        """Chunk-timing sink: installed per request via
        :func:`~repro.obs.metrics.chunk_observer` (in-process runners
        capture it on the submitting thread) and handed to the shard
        coordinator for worker-timed chunks. The call site's own
        ``perf_counter`` pair feeds the histogram, so
        ``repro_chunk_seconds`` populates with tracing disabled and stays
        bit-identical to the span timing with it enabled."""
        if trace_id:
            self._chunk_seconds.observe_traced(seconds, trace_id,
                                               kernel=kernel, phase=phase)
        else:
            self._chunk_seconds.observe(seconds, kernel=kernel, phase=phase)

    def _observe_scatter(self, seconds: float, phase: str,
                         trace_id: str | None = None) -> None:
        if trace_id:
            self._scatter_seconds.observe_traced(seconds, trace_id,
                                                 phase=phase)
        else:
            self._scatter_seconds.observe(seconds, phase=phase)

    def _note_degrade(self, frm: str, to: str, error: str = "") -> None:
        """Count a tier downgrade and flight-record it — every degrade is
        a resilience edge worth a debug bundle (rate-limited per reason)."""
        self._degraded.inc(**{"from": frm, "to": to})
        detail = f"{frm}->{to}" + (f" ({error})" if error else "")
        self._flight_capture("degrade", detail=detail)

    def _flight_capture(self, reason: str, detail: str = "",
                        record=None) -> None:
        if self.flight is not None:
            self.flight.capture(reason, detail=detail, record=record)

    def _flight_context(self) -> dict:
        """Live owner state snapshotted into every debug bundle."""
        ctx: dict = {
            "breaker": {"state": self.breaker.state},
            "shard_degraded": self.shard_degraded,
            "closed": self._closed,
        }
        shards = self.shards
        if shards is not None:
            ctx["shards"] = {
                "nshards": getattr(shards, "nshards", None),
                "segment_pool": dict(getattr(
                    getattr(shards, "segment_pool", None), "stats", {}) or {}),
            }
        return ctx

    def _build_plan_cold(self, A, B, mask, algorithm, phases,
                         request, deadline=None) -> SymbolicPlan:
        """Cold plan build — the one place symbolic work happens.

        With a multi-worker shard pool and a store-keyed two-phase request,
        the symbolic pass itself runs row-partitioned across the pool
        (:meth:`ShardCoordinator.symbolic`) instead of serially in-process —
        previously only the *numeric* pass was sharded, leaving the cold
        path single-threaded. Ineligible or failing cases (ad-hoc operands,
        unshared segments, segment pressure) degrade to the serial
        :func:`build_plan`, same result either way.
        """
        if (self.shards is not None and self.shards.nshards > 1
                and request is not None and phases == 2
                and self.breaker.allow()):
            from ..shard import ShardError, WorkerDied

            resolved = algorithm.lower()
            if resolved == "auto":
                resolved = kernel_registry.auto_select(A, B, mask)
            kernel_registry.get_spec(resolved)  # invalid names fail loudly
            try:
                row_sizes = self.shards.symbolic(
                    request.a, request.b, request.mask, mask,
                    (A.nrows, B.ncols), resolved, deadline=deadline)
                self.breaker.record_success()
                return SymbolicPlan(algorithm=resolved, phases=2,
                                    shape=(A.nrows, B.ncols),
                                    row_sizes=row_sizes)
            except (ShardError, OSError, InjectedFault) as exc:
                # same degradation contract as the numeric path below;
                # pool-health failures additionally feed the breaker and
                # trigger a heal so the *numeric* pass can still shard
                # (InjectedFault: a chaos-injected worker error behaves
                # exactly like the real one it models)
                self.shard_degraded = True
                if isinstance(exc, WorkerDied):
                    self.breaker.record_failure()
                    if self.breaker.state == "open":
                        self.shards.quiesce()
                        self._flight_capture(
                            "breaker_open",
                            detail=f"symbolic {type(exc).__name__}: {exc}")
                    else:
                        self._heal_shards()
                self._note_degrade("shard", "inprocess",
                                   error=type(exc).__name__)
        return build_plan(A, B, mask, algorithm=algorithm, phases=phases)

    # ------------------------------------------------------------------ #
    # the numeric tier ladder: shards → in-process fused → loop kernels
    # ------------------------------------------------------------------ #
    def _shard_tier(self, request, mask, plan, semiring, key, stats,
                    deadline) -> CSRMatrix | None:
        """Attempt the shard tier, retrying per :attr:`retry`; ``None``
        means the caller should degrade to the in-process tier.

        Failure taxonomy: ``DeadlineExceeded`` propagates (the caller's
        budget expired — no tier can fix that); ``SegmentMissing`` degrades
        immediately without feeding the breaker (a per-request operand
        condition, not pool sickness); ``WorkerDied`` feeds the breaker and
        triggers a pool heal *before* the retry, so the retry lands on a
        fresh pool; other ``ShardError``/``OSError`` feed the breaker and
        retry in place. A failure that opens the breaker instead parks the
        pool (:meth:`~repro.shard.ShardCoordinator.quiesce`) for the whole
        cooldown — the half-open probe's dispatch respawns it. All degraded
        outcomes stay bit-identical — the in-process tiers run the same
        kernels on the same plan.
        """
        from ..shard import SegmentMissing, ShardError, WorkerDied

        attempt = 0
        while True:
            try:
                # store-keyed request on a fused kernel: numeric pass runs
                # on the shard pool, workers scattering into a shared
                # output CSR (multi-process direct write)
                result = self.shards.multiply(
                    request.a, request.b, request.mask, mask, plan,
                    semiring, plan_cache_key=key, deadline=deadline)
                self.breaker.record_success()
                if attempt:
                    self._retries.inc(tier="shard", outcome="success")
                stats.sharded = True
                stats.direct_write = True
                stats.kernel_tier = kernel_tier(plan.algorithm)
                return result
            except DeadlineExceeded:
                raise
            except SegmentMissing:
                # incl. a worker's attach losing a race with operand
                # re-registration; serves in-process, no breaker count
                self.shard_degraded = True
                self._note_degrade("shard", "inprocess",
                                   error="SegmentMissing")
                return None
            except (ShardError, OSError, InjectedFault) as exc:
                # InjectedFault from a worker counts as the worker error
                # it models: breaker-fed, retried, then degraded
                self.shard_degraded = True
                self.breaker.record_failure()
                if self.breaker.state == "open":
                    # the tier is out of rotation for a whole cooldown:
                    # park the pool so its support threads stop contending
                    # with the in-process kernels (the half-open probe's
                    # dispatch respawns it)
                    self.shards.quiesce()
                    self._flight_capture(
                        "breaker_open",
                        detail=f"numeric {type(exc).__name__}: {exc}")
                elif isinstance(exc, WorkerDied):
                    self._heal_shards()
                attempt += 1
                if (attempt >= self.retry.max_attempts
                        or not self.breaker.allow()):
                    if attempt > 1:
                        self._retries.inc(tier="shard", outcome="failure")
                        self._flight_capture(
                            "retry_exhausted",
                            detail=f"tier=shard attempts={attempt} "
                                   f"error={type(exc).__name__}")
                    self._note_degrade("shard", "inprocess",
                                       error=type(exc).__name__)
                    return None
                if deadline is not None:
                    deadline.check("engine", "shard retry")
                with span("retry", tier="shard", attempt=attempt,
                          error=type(exc).__name__):
                    self.retry.sleep(attempt - 1)

    def _inprocess_tiers(self, A, B, mask, plan, algorithm, phases,
                         semiring, deadline, stats=None) -> CSRMatrix:
        """Tier 2 (in-process kernels: compiled native, then fused numpy),
        with tier 3 (per-row ``msa-loop``) as the last rung.

        The ladder exists because a cached :class:`SymbolicPlan`'s row
        sizes are *kernel-independent*: relabelling the plan replays the
        same masked product through a simpler kernel with the warm symbolic
        work intact — bit-identical output at every rung. A native-routed
        plan (``msa-native``/``hash-native``) first falls back to its fused
        base kernel (:data:`~repro.core.registry.NATIVE_BASE`), then the
        loop rung; the ``engine.kernel`` fault site is re-checked per rung
        so chaos can kill exactly one. Only deliberate injections
        (:class:`InjectedFault`) and memory pressure degrade here; genuine
        kernel bugs stay loud, because silently papering over them would
        hide miscompares, not failures. The tier that actually executed is
        stamped onto ``stats.kernel_tier``.
        """
        if deadline is not None:
            deadline.check("engine", "numeric start")
        try:
            if self.faults is not None and plan is not None:
                apply_fault(self.faults.check("engine.kernel"))
            result = masked_spgemm(A, B, mask, algorithm=algorithm,
                                   semiring=semiring, phases=phases,
                                   executor=self.executor, plan=plan)
            if stats is not None:
                stats.kernel_tier = kernel_tier(
                    plan.algorithm if plan is not None else algorithm)
            return result
        except (InjectedFault, MemoryError) as exc:
            if plan is None:
                raise  # baselines have no plan to relabel for a lower rung
            base = NATIVE_BASE.get(plan.algorithm)
            if base is not None:
                # compiled rung failed: replay the plan on its fused base
                # kernel before resorting to the loop tier
                self._note_degrade("native", "fused",
                                   error=type(exc).__name__)
                with span("degrade", tier="fused",
                          error=type(exc).__name__,
                          **{"from": "native", "to": "fused"}):
                    fused_plan = SymbolicPlan(algorithm=base,
                                              phases=plan.phases,
                                              shape=plan.shape,
                                              row_sizes=plan.row_sizes)
                    try:
                        if self.faults is not None:
                            apply_fault(self.faults.check("engine.kernel"))
                        result = masked_spgemm(
                            A, B, mask, algorithm=base, semiring=semiring,
                            phases=phases, executor=self.executor,
                            plan=fused_plan)
                        if stats is not None:
                            stats.kernel_tier = "fused"
                        return result
                    except (InjectedFault, MemoryError) as exc2:
                        exc, plan = exc2, fused_plan
            self._note_degrade("inprocess", "loop",
                               error=type(exc).__name__)
            with span("degrade", tier="loop", error=type(exc).__name__,
                      **{"from": "inprocess", "to": "loop"}):
                loop_plan = SymbolicPlan(algorithm="msa-loop",
                                         phases=plan.phases,
                                         shape=plan.shape,
                                         row_sizes=plan.row_sizes)
                result = masked_spgemm(A, B, mask, algorithm="msa-loop",
                                       semiring=semiring, phases=phases,
                                       plan=loop_plan)
                if stats is not None:
                    stats.kernel_tier = "loop"
                return result

    def _execute_traced(self, A, B, mask, a_fp, b_fp, mask_fp, *, algorithm,
                        phases, semiring, tag, request, value_fps,
                        trace_id: str, versions: tuple | None = None,
                        plan_free: bool = False) -> Response:
        t_start = time.perf_counter()
        stats = RequestStats(phases=phases, trace_id=trace_id)
        plan: SymbolicPlan | None = None
        # the server stamps a started deadline on the request at admission
        # (so queue time counts); direct engine callers start one here
        deadline = resolve_deadline(request) if request is not None else None
        if deadline is not None:
            deadline.check("engine")

        key = plan_key(a_fp, b_fp, mask_fp, mask.complemented,
                       algorithm, phases, semiring.name)
        rkey = None
        if plan_free:
            # dynamic-mask no-reuse regime: neither cache tier applies (a
            # fresh mask can never repeat), so skip both probes entirely
            value_fps = None
        if value_fps is not None:
            # result tier sits in front of the plan tier: a hit returns the
            # memoized CSR output with no plan lookup and no numeric pass
            rkey = result_key(key, *value_fps)
            with span("cache.lookup", cache="result"):
                with self._lock:
                    cached = self.results.get(rkey)
            if cached is not None:
                stats.algorithm = cached.algorithm
                stats.planned = algorithm.lower() not in BASELINE_KEYS
                stats.result_cache_hit = True
                stats.output_nnz = cached.matrix.nnz
                stats.total_seconds = time.perf_counter() - t_start
                with self._lock:
                    self.stats.record(stats)
                if self.flight is not None:
                    self.flight.note_request(stats.as_summary())
                return Response(result=cached.matrix, stats=stats, tag=tag,
                                request=request)

        if algorithm.lower() in BASELINE_KEYS:
            # whole-matrix baselines have no symbolic phase to plan
            stats.algorithm = algorithm.lower()
            stats.planned = False
        elif plan_free:
            # plan-free route: resolve the kernel per request (fused-only
            # auto_select) and bypass the plan cache in both directions —
            # no lookup, and no pollution of the LRU with a key that can
            # never hit again. Counted as the "unplanned" serving tier.
            t0 = time.perf_counter()
            resolved = algorithm.lower()
            if resolved == "auto":
                resolved = kernel_registry.auto_select(A, B, mask,
                                                       plan_free=True)
            kernel_registry.get_spec(resolved)  # invalid names fail loudly
            stats.plan_seconds = time.perf_counter() - t0
            stats.algorithm = resolved
            stats.planned = False
            algorithm = resolved
        else:
            with span("cache.lookup", cache="plan"):
                with self._lock:
                    plan = self.plans.get(key)
            if plan is not None:
                stats.plan_cache_hit = True
                stats.plan_reused = True
                stats.symbolic_skipped = phases == 2
            else:
                t0 = time.perf_counter()
                with span("symbolic.cold", algorithm=algorithm,
                          phases=phases):
                    plan = self._build_plan_cold(A, B, mask, algorithm,
                                                 phases, request, deadline)
                stats.plan_seconds = time.perf_counter() - t0
                with self._lock:
                    self.plans.put(key, plan)
            stats.algorithm = plan.algorithm
            from ..parallel.runner import uses_direct_write

            stats.direct_write = uses_direct_write(
                plan.algorithm, phases, self.executor,
                row_sizes_known=plan.row_sizes is not None)

        t0 = time.perf_counter()
        result = None
        with span("numeric",
                  kernel=plan.algorithm if plan is not None
                  else algorithm.lower()) as numeric_span:
            if (self.shards is not None and request is not None
                    and plan is not None and plan.row_sizes is not None
                    and self.shards.eligible(plan.algorithm, semiring)):
                if self.breaker.allow():
                    result = self._shard_tier(request, mask, plan, semiring,
                                              key, stats, deadline)
                else:
                    # breaker open: route around the pool without paying a
                    # scatter-and-fail round trip per request
                    self._note_degrade("shard", "inprocess",
                                       error="breaker_open")
            if result is None:
                result = self._inprocess_tiers(A, B, mask, plan, algorithm,
                                               phases, semiring, deadline,
                                               stats)
            if numeric_span is not None:
                numeric_span.attrs["sharded"] = stats.sharded
        stats.numeric_seconds = time.perf_counter() - t0
        stats.total_seconds = time.perf_counter() - t_start
        stats.output_nnz = result.nnz
        flops = None
        if rkey is not None and self.results.min_flops_per_byte > 0:
            # admission estimate, computed outside the lock (O(nnz(A)))
            from ..core.expand import total_flops

            flops = total_flops(A, B)
        with self._lock:
            if rkey is not None:
                # version guard: a delta (or re-registration) landing on any
                # of this request's store keys mid-execution has already run
                # its invalidation scan — a late writeback here would
                # resurrect a pre-mutation product into the post-mutation
                # cache, behind the invalidation the delta just performed.
                # Refuse it. The response itself is still correct: entries
                # are copy-on-write (a delta swaps in a fresh StoreEntry),
                # so this request computed on a consistent pre-delta
                # snapshot throughout.
                stale = versions is not None and any(
                    self.store.version(k) != v for k, v in versions)
                if stale:
                    self._delta_stale.inc()
                else:
                    with span("cache.writeback"):
                        self.results.put(rkey, result,
                                         stats.algorithm or algorithm,
                                         flops=flops)
            self.stats.record(stats)
        if self.flight is not None:
            self.flight.note_request(stats.as_summary())
        return Response(result=result, stats=stats, tag=tag, request=request)

    # ------------------------------------------------------------------ #
    # plan persistence
    # ------------------------------------------------------------------ #
    def save_plans(self, path) -> int:
        """Persist every cached plan to an ``.npz`` plan store at ``path``.

        Returns the number of plans written. The file is keyed purely on
        content fingerprints, so any engine (this process or a future one)
        whose operands hash identically can :meth:`load_plans` it.
        """
        with self._lock:
            items = self.plans.items()
        return PlanStore(path).save(items)

    def load_plans(self, path) -> int:
        """Warm-start the plan cache from a persisted store; returns the
        number of plans restored. Restored plans behave exactly like locally
        built ones: the first matching request is already a hit and skips
        auto-select and (for 2P) the whole symbolic pass."""
        loaded = PlanStore(path).load()
        with self._lock:
            for key, plan in loaded:
                self.plans.put(key, plan)
        return len(loaded)
