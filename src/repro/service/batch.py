"""Batch execution: group compatible requests and fan them out.

``BatchExecutor`` is the across-products axis of parallelism (the engine's
own ``executor`` is the within-product, row-parallel axis). A batch is

1. **grouped** by :meth:`Request.group_key` — identical (algorithm, phases,
   semiring, complement) configs run back-to-back, so a repeated-mask group
   pays one cold plan and streams warm hits; then
2. **fanned out** through an existing :mod:`repro.parallel` executor
   (serial / thread / simulated). Process pools are rejected: engine state
   (store, plan cache) is shared memory, and shipping it across a pipe per
   request would cost more than the products themselves.

Responses come back in the order of the input list regardless of grouping.

This layer stays synchronous on purpose: it is the execution substrate the
:class:`~repro.service.server.AsyncServer` worker pool drains into (each
drained group of compatible queued requests becomes one ``run()`` call), so
admission/backpressure concerns live in the server and batching/grouping
concerns live here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import AlgorithmError
from ..parallel.executor import ProcessExecutor, SerialExecutor
from .engine import Engine
from .requests import Request, Response


@dataclass
class BatchResult:
    """Ordered responses plus batch-level telemetry.

    With ``run(..., return_exceptions=True)``, entries of ``responses`` may
    be the exception a request raised instead of a Response.
    """

    responses: list[Response]
    seconds: float
    groups: int
    plan_hits: int
    plan_misses: int

    @property
    def plan_hit_rate(self) -> float:
        from ..bench.metrics import hit_rate

        return hit_rate(self.plan_hits, self.plan_misses)

    def __iter__(self):
        return iter(self.responses)


@dataclass
class BatchExecutor:
    """Run request batches against one engine.

    Parameters
    ----------
    engine : the (thread-safe) engine owning operands and plans.
    executor : a :mod:`repro.parallel` executor for the fan-out; None means
        serial. :class:`ProcessExecutor` is not supported (see module doc).
    """

    engine: Engine
    executor: object = field(default=None)

    def __post_init__(self):
        if isinstance(self.executor, ProcessExecutor):
            raise AlgorithmError(
                "BatchExecutor cannot use a process pool: the engine's store "
                "and plan cache are shared in-memory state; use a thread, "
                "serial or simulated executor"
            )

    def run(self, requests: list[Request], *,
            return_exceptions: bool = False) -> BatchResult:
        """Execute every request; responses align with the input order.

        ``return_exceptions=True`` isolates failures per request: each
        request executes exactly once, and a raising request contributes its
        exception to ``responses`` instead of aborting the batch (the async
        server relies on this — re-running a half-finished batch would
        double-execute and double-count the requests that had succeeded).
        """
        executor = self.executor or SerialExecutor()
        hits0 = self.engine.plans.hits
        misses0 = self.engine.plans.misses
        t0 = time.perf_counter()

        # stable grouping: order of first appearance, original index kept
        groups: dict[tuple, list[int]] = {}
        for idx, req in enumerate(requests):
            groups.setdefault(req.group_key(), []).append(idx)
        order = [idx for members in groups.values() for idx in members]

        def exec_one(i: int):
            try:
                return (i, self.engine.submit(requests[i]))
            except Exception as e:  # noqa: BLE001 - attributed per request
                if return_exceptions:
                    return (i, e)
                raise

        fanned = executor.map(exec_one, order)
        responses: list[Response | None] = [None] * len(requests)
        for idx, resp in fanned:
            responses[idx] = resp
        seconds = time.perf_counter() - t0
        # batch-level series on the engine's registry (the per-request
        # series come from the engine itself); get-or-make is idempotent
        self.engine.metrics.histogram(
            "repro_batch_seconds",
            "wall time of one BatchExecutor.run fan-out").observe(seconds)
        self.engine.metrics.counter(
            "repro_batch_requests_total",
            "requests executed through BatchExecutor").inc(len(requests))
        return BatchResult(
            responses=responses, seconds=seconds, groups=len(groups),
            plan_hits=self.engine.plans.hits - hits0,
            plan_misses=self.engine.plans.misses - misses0,
        )
