"""Result cache: the numeric memoization tier in front of the plan cache.

The :class:`~repro.service.plan.PlanCache` amortizes *pattern-only* work
(algorithm auto-selection + the paper's §6 symbolic pass); the numeric pass
still runs on every request. But serving traffic repeats harder than that:
dashboards re-query the same graph, retries replay identical requests, and
iterative workloads re-run on unchanged inputs. For those, the product itself
is deterministic — same operand patterns, same operand *values*, same
execution config → bit-identical output — so the full numeric result can be
memoized.

``ResultCache`` is a byte-accounted LRU keyed on

    (plan key … , A value hash, B value hash)

i.e. the plan cache's structural identity (operand/mask pattern fingerprints,
complement flag, algorithm, phases, semiring) extended with
:func:`repro.sparse.ops.value_fingerprint` digests of both operands' stored
numbers. Mask values never enter the key: masks are pure patterns, already
covered by the mask fingerprint. Hits return the cached
:class:`~repro.sparse.csr.CSRMatrix` object itself — bit-identical by
construction, zero-copy by design (library kernels never mutate operands, and
the engine hands the same object to every hit).

Eviction is LRU over *result bytes* (``indptr + indices + data``), not entry
count, because output sizes vary by orders of magnitude across requests; a
single over-budget result is simply not admitted. The cache layer is
engine-opt-in (``Engine(result_cache=...)`` /
``Engine(result_cache_bytes=...)``) and consulted only for store-keyed
requests — ad-hoc :meth:`Engine.multiply` operands would pay an O(nnz) hash
per call with little chance of repetition (iterative algorithms change values
every step).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..bench.metrics import hit_rate
from ..sparse.csr import CSRMatrix
from .store import matrix_nbytes

#: cache key tuple — plan_key(...) fields + (a_value_fp, b_value_fp)
ResultKey = tuple


def result_key(plan_key: tuple, a_value_fp: str, b_value_fp: str) -> ResultKey:
    """Extend a :func:`repro.service.plan.plan_key` with operand value hashes."""
    return plan_key + (a_value_fp, b_value_fp)


@dataclass
class CachedResult:
    """A memoized numeric product plus the metadata a Response needs."""

    matrix: CSRMatrix
    #: resolved kernel that produced it (stats reporting on hits)
    algorithm: str
    nbytes: int


class ResultCache:
    """Byte-accounted LRU map from :func:`result_key` tuples to results.

    Parameters
    ----------
    budget_bytes : ceiling on summed result bytes. Admitting past it evicts
        least-recently-used entries; a result larger than the whole budget is
        not admitted at all (counted in ``oversize_rejects``).
    min_flops_per_byte : cost-aware admission threshold. A cache hit saves
        the numeric pass — roughly the request's partial-product count
        (flops) — at the price of the result's bytes evicting other
        entries' savings. Results whose estimated ``flops / bytes`` falls
        below the threshold are not admitted (counted in
        ``policy_rejects``), so huge low-reuse outputs stop flushing hot
        small ones. 0 (default) admits everything under budget; callers
        that cannot estimate flops pass ``flops=None`` and bypass the
        policy (admission stays budget-only for them).
    """

    def __init__(self, budget_bytes: int = 256 << 20, *,
                 min_flops_per_byte: float = 0.0):
        if budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        if min_flops_per_byte < 0:
            raise ValueError(f"min_flops_per_byte must be >= 0, "
                             f"got {min_flops_per_byte}")
        self.budget_bytes = budget_bytes
        self.min_flops_per_byte = float(min_flops_per_byte)
        self._results: OrderedDict[ResultKey, CachedResult] = OrderedDict()
        self.total_bytes = 0
        from ..obs.metrics import MetricsRegistry

        self._bind_counters(MetricsRegistry())

    #: value of the ``cache`` label on this cache's registry counters
    METRICS_LABEL = "result"

    def _bind_counters(self, registry) -> None:
        self.metrics = registry
        self._requests = registry.counter(
            "repro_cache_requests_total",
            "cache lookups/admissions by cache tier and outcome",
            labels=("cache", "outcome"))
        self._evict_counter = registry.counter(
            "repro_cache_evictions_total", "cache entries evicted",
            labels=("cache",))
        self._reject_counter = registry.counter(
            "repro_cache_rejects_total",
            "admissions refused, by reason (oversize: larger than the whole "
            "budget; policy: failed the flops-per-byte threshold)",
            labels=("cache", "reason"))

    def bind_metrics(self, registry) -> None:
        """Re-home this cache's counters onto a shared registry (the
        engine's), carrying any standalone-accumulated counts forward."""
        hits, misses, evictions = self.hits, self.misses, self.evictions
        oversize, policy = self.oversize_rejects, self.policy_rejects
        self._bind_counters(registry)
        lbl = self.METRICS_LABEL
        if hits:
            self._requests.inc(hits, cache=lbl, outcome="hit")
        if misses:
            self._requests.inc(misses, cache=lbl, outcome="miss")
        if oversize + policy:
            self._requests.inc(oversize + policy, cache=lbl,
                               outcome="reject")
        if evictions:
            self._evict_counter.inc(evictions, cache=lbl)
        if oversize:
            self._reject_counter.inc(oversize, cache=lbl, reason="oversize")
        if policy:
            self._reject_counter.inc(policy, cache=lbl, reason="policy")

    def _reject(self, reason: str) -> None:
        self._requests.inc(cache=self.METRICS_LABEL, outcome="reject")
        self._reject_counter.inc(cache=self.METRICS_LABEL, reason=reason)

    # -- registry-derived counters (deprecated fields, kept as views) ---- #
    @property
    def hits(self) -> int:
        return int(self._requests.value(cache=self.METRICS_LABEL,
                                        outcome="hit"))

    @property
    def misses(self) -> int:
        return int(self._requests.value(cache=self.METRICS_LABEL,
                                        outcome="miss"))

    @property
    def evictions(self) -> int:
        return int(self._evict_counter.value(cache=self.METRICS_LABEL))

    @property
    def oversize_rejects(self) -> int:
        return int(self._reject_counter.value(cache=self.METRICS_LABEL,
                                              reason="oversize"))

    @property
    def policy_rejects(self) -> int:
        return int(self._reject_counter.value(cache=self.METRICS_LABEL,
                                              reason="policy"))

    def get(self, key: ResultKey) -> CachedResult | None:
        entry = self._results.get(key)
        if entry is None:
            self._requests.inc(cache=self.METRICS_LABEL, outcome="miss")
            return None
        self._results.move_to_end(key)
        self._requests.inc(cache=self.METRICS_LABEL, outcome="hit")
        return entry

    def put(self, key: ResultKey, matrix: CSRMatrix, algorithm: str, *,
            flops: int | None = None) -> bool:
        """Admit a result; returns False when it exceeds the whole budget or
        fails the flops-per-byte admission policy (``flops`` is the caller's
        estimate of the numeric work a future hit would save)."""
        nbytes = matrix_nbytes(matrix)
        if nbytes > self.budget_bytes:
            self._reject("oversize")
            return False
        if (self.min_flops_per_byte > 0 and flops is not None
                and flops < self.min_flops_per_byte * nbytes):
            self._reject("policy")
            return False
        old = self._results.pop(key, None)
        if old is not None:
            self.total_bytes -= old.nbytes
        self._results[key] = CachedResult(matrix, algorithm, nbytes)
        self.total_bytes += nbytes
        while self.total_bytes > self.budget_bytes:
            _, victim = self._results.popitem(last=False)
            self.total_bytes -= victim.nbytes
            self._evict_counter.inc(cache=self.METRICS_LABEL)
        return True

    def invalidate(self, key: ResultKey) -> bool:
        entry = self._results.pop(key, None)
        if entry is None:
            return False
        self.total_bytes -= entry.nbytes
        return True

    def invalidate_fingerprints(self, fingerprints) -> int:
        """Drop every entry whose key names any of ``fingerprints`` — in an
        operand/mask pattern slot *or* a value slot. This is the delta
        path's targeted invalidation: mutating one stored matrix kills
        exactly the memoized products that read it (by its old pattern
        and/or value hash) and leaves every other entry resident. Returns
        the number of entries dropped.

        (Fingerprints are content hashes, so an identical matrix registered
        under a second store key shares them; its entries drop too and
        simply re-memoize on the next request — a hygiene trade, never a
        correctness one.)
        """
        fps = {fp for fp in fingerprints if fp}
        if not fps:
            return 0
        victims = [k for k in self._results
                   if any(field in fps for field in k)]
        for k in victims:
            self.invalidate(k)
        return len(victims)

    def clear(self) -> None:
        self._results.clear()
        self.total_bytes = 0

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, key: ResultKey) -> bool:
        return key in self._results

    @property
    def hit_rate(self) -> float:
        return hit_rate(self.hits, self.misses)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ResultCache {len(self._results)} results, "
                f"{self.total_bytes}/{self.budget_bytes} bytes, "
                f"{self.hits} hits / {self.misses} misses>")
