"""Async serving front end: admission, backpressure, worker-pool execution.

:class:`~repro.service.batch.BatchExecutor` replays a *pre-materialized*
request list — fine for benchmarks, wrong for a server, which must admit work
concurrently with execution. :class:`AsyncServer` is the asyncio front end
the ROADMAP's *async executor* item asks for:

* **admission queue** — :meth:`AsyncServer.submit` enqueues a request and
  returns an awaitable :class:`~repro.service.requests.Response`; producers
  and the worker pool overlap freely;
* **bounded backpressure** — admission suspends (never drops) while either
  bound is exceeded: ``max_inflight`` admitted-but-unfinished requests, or
  ``max_queued_flops`` estimated partial products sitting in the queue
  (flops, not request count, because request cost varies by orders of
  magnitude — one scale-12 product outweighs hundreds of tiny ones). A
  request larger than the whole flops budget is still admitted once the
  queue is empty, so oversized work degrades to serial instead of
  deadlocking;
* **worker pool** — N asyncio workers each drain the oldest request plus up
  to ``max_batch - 1`` queued requests sharing its
  :meth:`~repro.service.requests.Request.group_key`, and run that group
  through the existing :class:`~repro.service.batch.BatchExecutor` in a
  thread (`asyncio.to_thread`), so the event loop stays responsive while
  numpy works. Grouping preserves the batch layer's locality win: a
  repeated-mask burst pays one cold plan and streams warm hits;
* **request dedup** — concurrent *identical* in-flight requests (same
  operand patterns *and values*, same mask/algorithm/phases/semiring — the
  result-cache key, computed from the store entries' fingerprints) coalesce
  onto one future: only the first executes; followers await it and receive
  a response flagged ``stats.coalesced``. A burst of equal products costs
  one numeric pass instead of N once the first has been admitted; requests
  arriving while their twin is still *suspended in the admission gate* are
  not coalesced (keys register post-admission, so a registered future is
  always eventually resolved by a worker — followers can never hang on a
  request that was refused). Disable with ``dedup=False`` (there is no
  reason to unless fingerprint hashing itself must be avoided);
* **graceful shutdown** — :meth:`AsyncServer.close` stops admission
  (subsequent submits raise :class:`ServerClosed`), drains every queued
  request, and joins the workers. Pair with ``Engine.save_plans`` for warm
  restarts.

Per-request telemetry rides the normal
:class:`~repro.service.requests.RequestStats` (the server fills
``queued_seconds``); server-level counters live in :class:`ServerStats`.

Quickstart::

    import asyncio
    from repro.service import AsyncServer, Engine, Request

    async def main(engine: Engine):
        async with AsyncServer(engine, workers=2, max_inflight=32) as srv:
            reqs = [Request(a="A", b="A", mask="M", phases=2)] * 64
            resps = await asyncio.gather(*[srv.submit(r) for r in reqs])
        return resps
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, replace

from ..core.expand import total_flops
from ..errors import ReproError
from ..obs import MetricsRegistry
from ..resilience import Deadline, DeadlineExceeded
from ..validation import check_multiplicable
from .batch import BatchExecutor
from .engine import Engine
from .requests import Request, RequestStats, Response


#: most (A-pattern, B-pattern) flops estimates a server memoizes
_FLOPS_MEMO_CAP = 4096


class ServerError(ReproError):
    """Async front-end misuse (bad bounds, double start, …)."""


class ServerClosed(ServerError):
    """Request submitted after :meth:`AsyncServer.close` began."""


@dataclass
class _Pending:
    """One admitted request waiting in the queue."""

    request: Request
    future: asyncio.Future
    flops: int
    t_admit: float


class ServerStats:
    """Server-level telemetry, **derived from** the metrics registry.

    Like :class:`~repro.service.engine.EngineStats`, the registry
    (``repro_server_requests_total{outcome}``,
    ``repro_server_batches_total``, the queue-depth/in-flight gauges and
    watermarks, ``repro_queued_seconds``,
    ``repro_server_request_seconds``) is the single bookkeeping system;
    every attribute here is a read-only view over it. The server shares
    its engine's registry by default, so one ``/metrics`` page covers
    admission through kernels. The deques remain the raw recent window for
    percentile reporting.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._outcomes = self.registry.counter(
            "repro_server_requests_total",
            "server requests by outcome (admitted counts every entry; "
            "coalesced requests are never admitted)",
            labels=("outcome",))
        self._batch_counter = self.registry.counter(
            "repro_server_batches_total",
            "request batches drained by the worker pool")
        self._sharded_counter = self.registry.counter(
            "repro_server_sharded_total",
            "completed requests whose numeric pass ran on the shard pool")
        self._queue_depth = self.registry.gauge(
            "repro_server_queue_depth",
            "requests currently waiting in the admission queue")
        self._inflight_gauge = self.registry.gauge(
            "repro_server_inflight",
            "admitted-but-unfinished requests")
        self._watermarks = self.registry.gauge(
            "repro_server_watermark",
            "high-water marks (kind=queue_depth|inflight)",
            labels=("kind",))
        self._queued_seconds = self.registry.histogram(
            "repro_queued_seconds", "admission→execution queue wait")
        self._latency_seconds = self.registry.histogram(
            "repro_server_request_seconds",
            "admission→completion request latency")
        # same family the engine declares — create-or-get by name, so one
        # counter spans every enforcement stage
        self._deadline_total = self.registry.counter(
            "repro_deadline_total",
            "requests shed by deadline, by enforcement stage",
            labels=("stage",))
        #: bounded windows, same rationale as EngineStats
        self.queue_waits: deque = deque(maxlen=4096)
        self.latencies: deque = deque(maxlen=4096)

    # -- recording hooks (called by AsyncServer) ------------------------ #
    def note_admitted(self, queue_depth: int, inflight: int) -> None:
        self._outcomes.inc(outcome="admitted")
        self.observe_queue(queue_depth, inflight)
        for kind, value in (("queue_depth", queue_depth),
                            ("inflight", inflight)):
            if value > self._watermarks.value(kind=kind):
                self._watermarks.set(value, kind=kind)

    def observe_queue(self, queue_depth: int, inflight: int) -> None:
        self._queue_depth.set(queue_depth)
        self._inflight_gauge.set(inflight)

    def note_coalesced(self) -> None:
        self._outcomes.inc(outcome="coalesced")

    def note_batch(self) -> None:
        self._batch_counter.inc()

    def note_failed(self) -> None:
        self._outcomes.inc(outcome="failed")

    def note_shed(self, stage: str) -> None:
        """A request dropped by deadline enforcement at ``stage``."""
        self._outcomes.inc(outcome="shed")
        self._deadline_total.inc(stage=stage)

    def note_completed(self, stats: RequestStats) -> None:
        self._outcomes.inc(outcome="completed")
        if stats.sharded:
            self._sharded_counter.inc()
        self._queued_seconds.observe(stats.queued_seconds)
        self._latency_seconds.observe(stats.total_seconds)
        self.queue_waits.append(stats.queued_seconds)
        self.latencies.append(stats.total_seconds)

    # -- registry-derived views ----------------------------------------- #
    @property
    def admitted(self) -> int:
        return int(self._outcomes.value(outcome="admitted"))

    @property
    def completed(self) -> int:
        return int(self._outcomes.value(outcome="completed"))

    @property
    def failed(self) -> int:
        return int(self._outcomes.value(outcome="failed"))

    @property
    def coalesced(self) -> int:
        """Requests served by awaiting an identical in-flight request's
        future (never admitted, never executed)."""
        return int(self._outcomes.value(outcome="coalesced"))

    @property
    def shed(self) -> int:
        """Requests dropped by deadline enforcement (any stage)."""
        return int(self._outcomes.value(outcome="shed"))

    @property
    def batches(self) -> int:
        """Batches drained by workers (≤ completed; higher grouping →
        fewer)."""
        return int(self._batch_counter.value())

    @property
    def sharded(self) -> int:
        """Completed requests whose numeric pass ran on the engine's
        shard-worker pool (``RequestStats.sharded``)."""
        return int(self._sharded_counter.value())

    @property
    def max_queue_depth(self) -> int:
        return int(self._watermarks.value(kind="queue_depth"))

    @property
    def max_inflight_seen(self) -> int:
        return int(self._watermarks.value(kind="inflight"))

    @property
    def requests_per_batch(self) -> float:
        return self.completed / self.batches if self.batches else 0.0


class AsyncServer:
    """Asyncio request front end over a (thread-safe) :class:`Engine`.

    Parameters
    ----------
    engine : the engine owning operands, plans and results.
    workers : worker-pool size — concurrent batches in flight. Each worker
        occupies one thread during execution, so size this like a thread
        pool (the GIL damps, numpy sections release it).
    max_inflight : admission bound on admitted-but-unfinished requests.
    max_queued_flops : admission bound on summed estimated partial products
        waiting in the queue (None = unbounded). Estimates come from
        ``total_flops(A, B)`` on the store-resolved operands, memoized per
        operand-pattern pair.
    max_batch : most requests one worker drains into a single
        :class:`BatchExecutor` run.
    dedup : coalesce concurrent identical in-flight requests onto one
        future (see module docstring). On by default.
    """

    def __init__(self, engine: Engine, *, workers: int = 2,
                 max_inflight: int = 64,
                 max_queued_flops: int | None = None,
                 max_batch: int = 16,
                 dedup: bool = True):
        if workers <= 0 or max_inflight <= 0 or max_batch <= 0:
            raise ServerError(
                f"workers/max_inflight/max_batch must be positive, got "
                f"{workers}/{max_inflight}/{max_batch}"
            )
        if max_queued_flops is not None and max_queued_flops <= 0:
            raise ServerError(
                f"max_queued_flops must be positive or None, got "
                f"{max_queued_flops}"
            )
        self.engine = engine
        self.workers = workers
        self.max_inflight = max_inflight
        self.max_queued_flops = max_queued_flops
        self.max_batch = max_batch
        self.dedup = dedup
        #: result-cache key → future of the identical in-flight primary
        self._inflight_keys: dict[tuple, asyncio.Future] = {}
        # delta/read ordering (all mutated on the event-loop thread, waits
        # via self._cond): store keys with an apply_delta in progress, and
        # per-key counts of reads between admission and completion
        self._writers: set[str] = set()
        self._readers: dict[str, int] = {}
        #: one-shot events armed by delta writers waiting for readers to
        #: drain; set (synchronously) by every reader release
        self._drain_events: set[asyncio.Event] = set()
        # share the engine's registry: one /metrics page spans admission
        # through kernel chunks
        self.stats = ServerStats(engine.metrics)
        self._batcher = BatchExecutor(engine)
        self._pending: deque[_Pending] = deque()
        self._queued_flops = 0
        self._inflight = 0
        self._closed = False
        self._cond: asyncio.Condition | None = None  # bound to the loop in start()
        self._tasks: list[asyncio.Task] = []
        # bounded LRU: a long-lived server with operand churn must not grow
        # one memo entry per pattern pair forever
        self._flops_memo: OrderedDict[tuple[str, str], int] = OrderedDict()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "AsyncServer":
        if self._tasks:
            raise ServerError("server already started")
        self._closed = False
        self._cond = asyncio.Condition()
        self._tasks = [asyncio.create_task(self._worker(), name=f"repro-worker-{i}")
                       for i in range(self.workers)]
        return self

    async def close(self) -> None:
        """Graceful shutdown: refuse new work, drain the queue, join workers.

        Robust on failure paths: workers are joined with
        ``return_exceptions=True`` and any queued request left unresolved
        (a worker task that died mid-drain) gets :class:`ServerClosed` set
        on its future, so no submitter can hang on shutdown. The first
        worker-task error (there should be none — workers attribute
        failures per request) is re-raised after cleanup completes.
        """
        if self._cond is None:
            return
        async with self._cond:
            self._closed = True
            self._cond.notify_all()
        results = await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        async with self._cond:
            leftovers, self._pending = list(self._pending), deque()
            self._queued_flops = 0
        for pending in leftovers:  # pragma: no cover - worker-death path
            if not pending.future.done():
                pending.future.set_exception(
                    ServerClosed("server worker died before this request ran"))
        errors = [r for r in results if isinstance(r, BaseException)]
        if errors:  # pragma: no cover - workers catch per-batch failures
            raise errors[0]

    async def __aenter__(self) -> "AsyncServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def _resolve_entries(self, request: Request):
        """Store-entry resolution for admission. Unknown store keys fail
        here — at admission, where the error belongs — rather than inside a
        worker. Resolution goes through ``Engine.entry`` (the locked path):
        this runs on the event-loop thread concurrently with worker threads
        mutating the store's LRU order."""
        a_entry = self.engine.entry(request.a)
        b_entry = self.engine.entry(request.b)
        mask_entry = (self.engine.entry(request.mask)
                      if request.mask is not None else None)
        return a_entry, b_entry, mask_entry

    def _estimate_flops(self, a_entry, b_entry) -> int:
        """Partial-product estimate for the queued-flops bound, memoized per
        (A-pattern, B-pattern) pair."""
        key = (a_entry.fingerprint, b_entry.fingerprint)
        flops = self._flops_memo.get(key)
        if flops is None:
            # shape check first: total_flops indexes B's rows by A's columns
            # and would die with a bare IndexError on mismatched operands
            check_multiplicable(a_entry.value.shape, b_entry.value.shape)
            flops = total_flops(a_entry.value, b_entry.value)
            self._flops_memo[key] = flops
            while len(self._flops_memo) > _FLOPS_MEMO_CAP:
                self._flops_memo.popitem(last=False)
        else:
            self._flops_memo.move_to_end(key)
        return flops

    def _dedup_key(self, request: Request, a_entry, b_entry,
                   mask_entry) -> tuple:
        """Identity of a request's *result*: operand patterns and values,
        mask pattern, and the kernel configuration — the async analogue of
        the result-cache key. Two requests with equal keys are guaranteed
        the same output, so the second can await the first."""
        return (a_entry.fingerprint, b_entry.fingerprint,
                a_entry.value_fingerprint, b_entry.value_fingerprint,
                mask_entry.fingerprint if mask_entry is not None else "",
                request.complemented, request.algorithm.lower(),
                request.phases, request.semiring, request.plan_free)

    def _shed(self, stage: str, detail: str = "") -> None:
        """Record and raise a deadline shed at ``stage``."""
        self.stats.note_shed(stage)
        flight = getattr(self.engine, "flight", None)
        if flight is not None:
            # a shed is a resilience edge: flight-record it with the
            # server-side stage (engine-side sheds capture in _execute)
            flight.capture("deadline", detail=f"stage={stage} {detail}")
        extra = f" ({detail})" if detail else ""
        raise DeadlineExceeded(f"deadline exceeded at {stage}{extra}",
                               stage=stage)

    # ------------------------------------------------------------------ #
    # delta/read ordering
    # ------------------------------------------------------------------ #
    @staticmethod
    def _request_keys(request: Request) -> set[str]:
        keys = {request.a, request.b}
        if request.mask is not None:
            keys.add(request.mask)
        return keys

    async def _begin_read(self, keys: set[str], deadline) -> None:
        """Gate a read against in-progress deltas: wait until none of the
        request's store keys has an ``apply_delta`` running (so entry
        resolution sees post-delta state), then register as a reader on
        each key until completion. Runs before backpressure admission —
        delta ordering is about *store state*, not queue capacity."""
        async with self._cond:
            while not self._closed and (keys & self._writers):
                if deadline is None:
                    await self._cond.wait()
                    continue
                remaining = deadline.remaining()
                if remaining <= 0.0:
                    self._shed("admission", "delta in progress on operand")
                try:
                    await asyncio.wait_for(self._cond.wait(), remaining)
                except asyncio.TimeoutError:
                    self._shed("admission", "delta in progress on operand")
            if self._closed:
                raise ServerClosed("server is shutting down; request refused")
            for k in keys:
                self._readers[k] = self._readers.get(k, 0) + 1

    def _end_read(self, keys: set[str]) -> None:
        """Reader release. Synchronous on purpose: running in a ``finally``
        with no await leaves no cancellation window, so a cancelled or shed
        submitter can never leak a reader count (which would deadlock a
        waiting delta). Wakes any writer parked on the drain events."""
        for k in keys:
            n = self._readers.get(k, 0) - 1
            if n <= 0:
                self._readers.pop(k, None)
            else:
                self._readers[k] = n
        for ev in list(self._drain_events):
            ev.set()

    async def apply_delta(self, key, batch=None):
        """Apply one edge-delta batch to the matrix stored under ``key``,
        ordered against in-flight reads.

        Accepts ``(key, DeltaBatch)`` or a single
        :class:`~repro.service.requests.DeltaRequest`. Ordering contract:
        the delta waits until every request naming ``key`` admitted *before
        it* has completed; requests arriving *after* the delta began wait at
        the admission gate and resolve post-delta entries. Deltas on the
        same key serialize; deltas on distinct keys and reads on unrelated
        keys proceed concurrently. The mutation itself runs
        :meth:`Engine.apply_delta` in a worker thread and returns its
        :class:`~repro.delta.DeltaOutcome`.
        """
        if batch is None:
            request = key
            key, batch = request.key, request.to_batch()
        if self._cond is None:
            raise ServerError("server not started (use `async with` or start())")
        if self._closed:
            raise ServerClosed("server is shutting down; delta refused")
        async with self._cond:
            while key in self._writers:
                await self._cond.wait()
                if self._closed:
                    raise ServerClosed(
                        "server is shutting down; delta refused")
            self._writers.add(key)
        try:
            while self._readers.get(key, 0):
                ev = asyncio.Event()
                self._drain_events.add(ev)
                try:
                    if self._readers.get(key, 0):
                        await ev.wait()
                finally:
                    self._drain_events.discard(ev)
            return await asyncio.to_thread(self.engine.apply_delta,
                                           key, batch)
        finally:
            # discard is synchronous (no cancellation window can leave the
            # key write-locked); the notify wake-up is shielded so waiting
            # readers are released even if this task was cancelled
            self._writers.discard(key)
            await asyncio.shield(self._notify_waiters())

    async def _notify_waiters(self) -> None:
        async with self._cond:
            self._cond.notify_all()

    async def submit(self, request: Request) -> Response:
        """Admit one request (suspending under backpressure) and await its
        response. Raises :class:`ServerClosed` once shutdown has begun, and
        re-raises whatever the engine raised for this specific request.

        An identical request already in flight short-circuits admission: the
        call awaits the primary's future and returns a shared-result
        response flagged ``stats.coalesced``.

        Requests with ``deadline_ms`` start their budget *here*, so every
        later interval — the backpressure gate, queue time, scatter waits —
        counts against it. Each enforcement stage sheds with a typed
        :class:`~repro.resilience.DeadlineExceeded` naming the stage, and a
        coalesced follower whose own budget expires while the primary runs
        gets its own ``stage="follower"`` shed rather than inheriting the
        primary's fate."""
        if self._cond is None:
            raise ServerError("server not started (use `async with` or start())")
        if self._closed:
            raise ServerClosed("server is shutting down; request refused")
        # stamp the started deadline onto the request: the engine's
        # resolve_deadline() picks it up, so queue time spends the budget
        deadline = Deadline.after_ms(request.deadline_ms)
        if deadline is not None:
            request._deadline = deadline
        # order against deltas: wait out any in-progress mutation of this
        # request's operands, then hold them read-locked until completion
        keys = self._request_keys(request)
        await self._begin_read(keys, deadline)
        try:
            return await self._submit_read(request, deadline)
        finally:
            self._end_read(keys)

    async def _submit_read(self, request: Request, deadline) -> Response:
        """Post-gate submission flow (operand read locks held by caller)."""
        a_entry, b_entry, mask_entry = self._resolve_entries(request)
        key = None
        if self.dedup:
            key = self._dedup_key(request, a_entry, b_entry, mask_entry)
            while True:
                primary = self._inflight_keys.get(key)
                if primary is None or primary.done():
                    break
                if deadline is not None and deadline.expired():
                    self._shed("follower", "identical request in flight")
                # shield: a follower being cancelled must not cancel the
                # primary's future out from under everyone else awaiting it
                try:
                    if deadline is None:
                        primary_resp = await asyncio.shield(primary)
                    else:
                        primary_resp = await asyncio.wait_for(
                            asyncio.shield(primary), deadline.remaining())
                except asyncio.TimeoutError:
                    # this follower's own budget ran out first; the primary
                    # (still shielded) keeps running for everyone else
                    self._shed("follower", "own deadline expired while "
                                           "awaiting the primary")
                except asyncio.CancelledError:
                    if primary.cancelled():
                        continue  # primary abandoned; re-check, else execute
                    raise  # this follower itself was cancelled
                except DeadlineExceeded:
                    # the *primary* was shed on its own (shorter) deadline;
                    # this follower still has budget — re-check and execute
                    # for real instead of inheriting the primary's shed
                    if deadline is not None and deadline.expired():
                        self._shed("follower",
                                   "primary shed; own budget also spent")
                    continue
                except Exception:
                    if deadline is not None and deadline.expired():
                        # attribute the follower's expiry, not the
                        # primary's unrelated failure
                        self._shed("follower", "own deadline expired "
                                               "before the primary failed")
                    raise
                self.stats.note_coalesced()
                return Response(result=primary_resp.result,
                                stats=replace(primary_resp.stats,
                                              coalesced=True),
                                tag=request.tag, request=request)
        flops = self._estimate_flops(a_entry, b_entry)
        loop = asyncio.get_running_loop()
        item = _Pending(request=request, future=loop.create_future(),
                        flops=flops, t_admit=time.perf_counter())
        async with self._cond:
            while not self._closed and not self._admittable(flops):
                if deadline is None:
                    await self._cond.wait()
                    continue
                remaining = deadline.remaining()
                if remaining <= 0.0:
                    self._shed("admission", "backpressure gate")
                try:
                    await asyncio.wait_for(self._cond.wait(), remaining)
                except asyncio.TimeoutError:
                    self._shed("admission", "backpressure gate")
            if self._closed:
                raise ServerClosed("server is shutting down; request refused")
            self._pending.append(item)
            self._queued_flops += flops
            self._inflight += 1
            self.stats.note_admitted(len(self._pending), self._inflight)
            self._cond.notify_all()
        if key is not None and key not in self._inflight_keys:
            # registered only once *admitted*: every registered future is
            # eventually resolved by a worker (close() drains the queue), so
            # followers can never hang on it
            self._inflight_keys[key] = item.future
            item.future.add_done_callback(
                lambda fut, k=key: self._drop_inflight_key(k, fut))
        if deadline is None:
            return await item.future
        try:
            # wait_for cancels the future on timeout: a worker reaching it
            # later sees .done() and skips it, and the queue sweep reclaims
            # its in-flight slot — no stranded futures, no wasted kernels
            return await asyncio.wait_for(item.future,
                                          max(deadline.remaining(), 0.0))
        except asyncio.TimeoutError:
            self._shed("submit", "deadline expired awaiting execution")

    def _drop_inflight_key(self, key: tuple, fut: asyncio.Future) -> None:
        if self._inflight_keys.get(key) is fut:
            del self._inflight_keys[key]

    def _admittable(self, flops: int) -> bool:
        if self._inflight >= self.max_inflight:
            return False
        if self.max_queued_flops is None:
            return True
        # an empty queue always admits, so one oversized request degrades to
        # serial execution instead of waiting forever
        return (not self._pending
                or self._queued_flops + flops <= self.max_queued_flops)

    # ------------------------------------------------------------------ #
    # worker pool
    # ------------------------------------------------------------------ #
    def _sweep_queue_locked(self) -> None:
        """Shed queued requests that can no longer be served — expired
        deadlines (their submitter gets a ``stage="queue"``
        :class:`DeadlineExceeded`) and already-done futures (the submitter's
        own deadline cancelled them) — before a worker wastes a thread on
        them. Runs under the condition lock."""
        if not self._pending:
            return
        kept: deque[_Pending] = deque()
        dropped = False
        for p in self._pending:
            dl = getattr(p.request, "_deadline", None)
            if not p.future.done() and (dl is None or not dl.expired()):
                kept.append(p)
                continue
            if not p.future.done():
                self.stats.note_shed("queue")
                p.future.set_exception(DeadlineExceeded(
                    "deadline expired while queued", stage="queue"))
            self._inflight -= 1
            self._queued_flops -= p.flops
            dropped = True
        if dropped:
            self._pending = kept
            self.stats.observe_queue(len(self._pending), self._inflight)
            self._cond.notify_all()  # freed budget: wake throttled producers

    async def _next_batch(self) -> list[_Pending] | None:
        """Oldest pending request plus queued group-key-compatible followers
        (up to ``max_batch``), or None when closed and fully drained."""
        async with self._cond:
            while True:
                self._sweep_queue_locked()
                if self._pending or self._closed:
                    break
                await self._cond.wait()
            if not self._pending:
                return None  # closed and drained
            head = self._pending.popleft()
            batch = [head]
            gkey = head.request.group_key()
            rest = deque()
            while self._pending and len(batch) < self.max_batch:
                nxt = self._pending.popleft()
                if nxt.request.group_key() == gkey:
                    batch.append(nxt)
                else:
                    rest.append(nxt)
            rest.extend(self._pending)
            self._pending = rest
            self._queued_flops -= sum(p.flops for p in batch)
            self.stats.observe_queue(len(self._pending), self._inflight)
            # draining frees queued-flops budget immediately: wake producers
            # throttled on that bound now, not after the batch finishes
            # executing (the in-flight bound still holds them if it applies)
            self._cond.notify_all()
            return batch

    def _run_batch(self, requests: list[Request]) -> list[Response | Exception]:
        """Thread-side execution through BatchExecutor (one group by
        construction). ``return_exceptions=True`` makes failures per-request:
        each request runs exactly once, and a raising request yields its
        exception while its batchmates' responses survive."""
        return list(self._batcher.run(requests,
                                      return_exceptions=True).responses)

    async def _worker(self) -> None:
        while True:
            batch = await self._next_batch()
            if batch is None:
                return
            t_exec = time.perf_counter()
            try:
                results = await asyncio.to_thread(
                    self._run_batch, [p.request for p in batch])
            except Exception as e:
                # batch-level failure (BatchExecutor plumbing): attribute it
                # to every request in the batch and keep the worker alive —
                # dying here would strand the futures of everything still
                # queued behind this batch. CancelledError and friends are
                # BaseException and deliberately NOT caught: a cancelled
                # worker must die promptly (close() fails its leftovers)
                results = [e] * len(batch)
            t_done = time.perf_counter()
            async with self._cond:
                self.stats.note_batch()
                for pending, result in zip(batch, results):
                    self._inflight -= 1
                    if isinstance(result, BaseException):
                        self.stats.note_failed()
                        # .done(), not .cancelled(): a deadline may have
                        # resolved this future while the batch executed
                        if not pending.future.done():
                            pending.future.set_exception(result)
                        continue
                    result.stats.queued_seconds = t_exec - pending.t_admit
                    result.stats.total_seconds = t_done - pending.t_admit
                    self.stats.note_completed(result.stats)
                    # stitch the admission wait into the request's trace as
                    # a post-hoc span: the engine only sees the request once
                    # a worker drains it, so the server owns this interval
                    if result.stats.trace_id:
                        rec = self.engine.tracer.get(result.stats.trace_id)
                        if rec is not None:
                            rec.add_span("queue", pending.t_admit, t_exec)
                    if not pending.future.done():
                        pending.future.set_result(result)
                self.stats.observe_queue(len(self._pending), self._inflight)
                self._cond.notify_all()  # wake throttled producers


async def serve_all(server: AsyncServer,
                    requests: list[Request]) -> list[Response]:
    """Submit every request concurrently (admission throttles) and gather
    responses in input order — the async analogue of ``BatchExecutor.run``."""
    return list(await asyncio.gather(
        *[server.submit(req) for req in requests]))
