"""Named matrix store with memory accounting and LRU eviction.

The store is the engine's operand namespace: services register CSR matrices
and mask patterns once under string keys, then address them from requests.
Each entry carries a lazily-computed **pattern fingerprint**
(:func:`repro.sparse.ops.pattern_fingerprint`) — the PlanCache key primitive
— cached per registration so repeated requests pay the O(nnz) hash only once
per pattern, and recomputed on re-registration so value-only updates keep
their fingerprint (plans stay hot) while pattern changes naturally invalidate
(plans miss).

An optional byte budget turns the store into an LRU cache over operand
memory: registering past the budget evicts the least-recently-*used* entries
(use = resolved by a request or fetched via :meth:`MatrixStore.get`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError
from ..mask import Mask
from ..sparse.csr import CSRMatrix
from ..sparse.ops import pattern_fingerprint, value_fingerprint


class StoreError(ReproError):
    """Unknown key, over-budget registration, or similar store misuse."""


def matrix_nbytes(m: CSRMatrix | Mask) -> int:
    """Resident bytes of a CSR matrix or mask (its numpy arrays)."""
    n = m.indptr.nbytes + m.indices.nbytes
    if isinstance(m, CSRMatrix):
        n += m.data.nbytes
    return n


@dataclass
class StoreEntry:
    value: CSRMatrix | Mask
    nbytes: int
    pinned: bool = False
    #: monotonic per-key mutation counter: bumped on every re-registration
    #: or delta swap. The engine snapshots it at request resolution and
    #: refuses late result-cache writebacks whose snapshot is stale — the
    #: version guard that keeps a delta applied mid-request from letting a
    #: pre-delta product land in the cache (see Engine.apply_delta).
    version: int = 0
    _fingerprint: str | None = field(default=None, repr=False)
    _value_fingerprint: str | None = field(default=None, repr=False)

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            v = self.value
            self._fingerprint = pattern_fingerprint(v.indptr, v.indices, v.shape)
        return self._fingerprint

    @property
    def value_fingerprint(self) -> str:
        """Content hash of the stored values (CSR matrices only; masks are
        pure patterns and hash to a constant). Memoized per registration like
        :attr:`fingerprint`, so re-registering with new values recomputes —
        which is exactly what keys the ResultCache correctly."""
        if self._value_fingerprint is None:
            v = self.value
            self._value_fingerprint = (value_fingerprint(v.data)
                                       if isinstance(v, CSRMatrix) else "mask")
        return self._value_fingerprint


class MatrixStore:
    """Key → matrix/mask registry with LRU eviction under a byte budget.

    Parameters
    ----------
    budget_bytes : int | None
        Soft ceiling on total resident operand bytes. None = unbounded.
        Pinned entries never count as eviction candidates.
    """

    def __init__(self, budget_bytes: int | None = None):
        if budget_bytes is not None and budget_bytes <= 0:
            raise StoreError(f"budget_bytes must be positive, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._entries: dict[str, StoreEntry] = {}  # insertion order = LRU order
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def register(self, key: str, value: CSRMatrix | Mask, *,
                 pin: bool = False) -> StoreEntry:
        """Insert or replace ``key``. Replacement drops the cached
        fingerprint, so a value-only update recomputes to the *same*
        fingerprint (plans keep hitting) while a pattern change yields a new
        one (plans miss, as they must)."""
        if not isinstance(value, (CSRMatrix, Mask)):
            raise StoreError(
                f"store values must be CSRMatrix or Mask, got {type(value).__name__}"
            )
        old = self._entries.pop(key, None)
        entry = StoreEntry(value, matrix_nbytes(value), pinned=pin,
                           version=old.version + 1 if old is not None else 0)
        if self.budget_bytes is not None:
            # feasibility first: reject before evicting anything, and restore
            # the replaced entry, so a failed registration leaves the store
            # exactly as it was.
            unevictable = sum(e.nbytes for e in self._entries.values()
                              if e.pinned)
            if entry.nbytes + unevictable > self.budget_bytes:
                if old is not None:
                    self._entries[key] = old
                raise StoreError(
                    f"cannot register {key!r}: {entry.nbytes} bytes plus "
                    f"{unevictable} pinned bytes exceed the "
                    f"{self.budget_bytes}-byte budget"
                )
        self._entries[key] = entry
        self._enforce_budget(protect=key)
        return entry

    def get(self, key: str) -> CSRMatrix | Mask:
        return self.entry(key).value

    def entry(self, key: str) -> StoreEntry:
        """Fetch the entry and mark it most-recently-used."""
        try:
            entry = self._entries.pop(key)
        except KeyError:
            raise StoreError(
                f"no matrix registered under {key!r}; "
                f"known keys: {sorted(self._entries)}"
            ) from None
        self._entries[key] = entry  # move to MRU position
        return entry

    def swap(self, key: str, value: CSRMatrix | Mask, *,
             fingerprint: str | None = None,
             value_fingerprint: str | None = None) -> StoreEntry:
        """Replace ``key``'s matrix in place: same LRU position, same pinned
        flag, version bumped. This is the delta path's mutation primitive —
        unlike :meth:`register` it accepts pre-computed fingerprints, so a
        value-only delta carries the *old pattern fingerprint forward*
        (plans keep hitting without re-hashing the unchanged pattern) and
        callers can hash outside their locks."""
        try:
            old = self._entries[key]
        except KeyError:
            raise StoreError(
                f"no matrix registered under {key!r}; "
                f"known keys: {sorted(self._entries)}"
            ) from None
        entry = StoreEntry(value, matrix_nbytes(value), pinned=old.pinned,
                           version=old.version + 1,
                           _fingerprint=fingerprint,
                           _value_fingerprint=value_fingerprint)
        if self.budget_bytes is not None:
            unevictable = sum(e.nbytes for k, e in self._entries.items()
                              if e.pinned and k != key)
            if entry.nbytes + unevictable > self.budget_bytes:
                raise StoreError(
                    f"cannot swap {key!r}: {entry.nbytes} bytes plus "
                    f"{unevictable} pinned bytes exceed the "
                    f"{self.budget_bytes}-byte budget"
                )
        self._entries[key] = entry  # assignment keeps the LRU position
        self._enforce_budget(protect=key)
        return entry

    def version(self, key: str) -> int | None:
        """Current mutation version of ``key`` (None when absent). Does not
        touch LRU order — this is the writeback guard's read path."""
        entry = self._entries.get(key)
        return None if entry is None else entry.version

    def evict(self, key: str) -> bool:
        """Drop ``key``; returns whether it was present."""
        return self._entries.pop(key, None) is not None

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[str]:
        return list(self._entries)

    def entries(self) -> list[tuple[str, StoreEntry]]:
        """Snapshot of (key, entry) pairs without touching LRU order — the
        delta path's fingerprint-map source."""
        return list(self._entries.items())

    @property
    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    # ------------------------------------------------------------------ #
    def _enforce_budget(self, *, protect: str) -> None:
        if self.budget_bytes is None:
            return
        while self.total_bytes > self.budget_bytes:
            victim = next(
                (k for k, e in self._entries.items()
                 if k != protect and not e.pinned), None)
            if victim is None:
                # unreachable: register() pre-checks feasibility. A pinned
                # protect entry over budget would be the only way here.
                raise StoreError(
                    f"matrix store over budget ({self.total_bytes} > "
                    f"{self.budget_bytes} bytes) with no evictable entries"
                )
            del self._entries[victim]
            self.evictions += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "∞" if self.budget_bytes is None else str(self.budget_bytes)
        return (f"<MatrixStore {len(self._entries)} entries, "
                f"{self.total_bytes}/{cap} bytes>")
