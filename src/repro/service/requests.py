"""Request / response dataclasses for the service layer.

A :class:`Request` names its operands by **store key** (see
:class:`repro.service.store.MatrixStore`) rather than carrying matrices, so
requests are cheap to build, log, batch and replay from JSON. The engine
resolves keys at execution time, which is what lets a long-lived service
update a registered matrix's values between requests without touching the
request stream.

Every :class:`Response` carries a :class:`RequestStats` — the per-request
observability (plan-cache hit/miss, which phase work was skipped, timings)
that the ROADMAP's serving story needs and that
``benchmarks/bench_service_plan_cache.py`` plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..sparse.csr import CSRMatrix


@dataclass
class Request:
    """One masked product ``C = M ⊙ (A·B)`` addressed by store keys.

    Parameters
    ----------
    a, b : str
        Store keys of the operands.
    mask : str | None
        Store key of the mask pattern; None means unmasked (full mask).
    complemented : bool
        Complement the mask pattern (``C = ¬M ⊙ (A·B)``).
    algorithm : str
        Kernel key or ``"auto"`` (resolved once, then cached in the plan)
        or a baseline name (baselines bypass the plan cache — they have no
        symbolic phase).
    phases : int
        1 or 2. Two-phase requests are where plan caching pays most: a warm
        request skips the whole symbolic pass.
    semiring : str
        Registered semiring name (string, so requests stay JSON-serializable).
    tag : str
        Free-form label echoed into the response, for workload bookkeeping.
    deadline_ms : float | None
        Total latency budget in milliseconds, or None for no deadline. The
        async server starts the clock at :meth:`AsyncServer.submit` (queue
        time counts); enforcement sites — admission, queue, shard scatter —
        shed the request with :class:`~repro.resilience.DeadlineExceeded`
        once the budget is spent. ``from_dict`` picks it up like every
        other field, so JSON workloads can set per-request deadlines.
    plan_free : bool
        The dynamic-mask no-reuse route: this request's mask is fresh and
        will never repeat, so the engine bypasses the plan cache entirely
        (no lookup, no pollution of the LRU with a never-again key) and
        ``auto`` resolves via ``auto_select(plan_free=True)`` — among the
        chunk-fused kernels only. Counted in the ``unplanned`` serving
        tier.
    """

    a: str
    b: str
    mask: str | None = None
    complemented: bool = False
    algorithm: str = "auto"
    phases: int = 2
    semiring: str = "plus_times"
    tag: str = ""
    deadline_ms: float | None = None
    plan_free: bool = False

    def group_key(self) -> tuple:
        """Batching key: requests with equal group keys share kernel config,
        so executing them back-to-back maximizes plan/code locality."""
        return (self.algorithm, self.phases, self.semiring, self.complemented,
                self.plan_free)

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "Request":
        """Build from a JSON-ish dict (the CLI workload format)."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(spec) - known - {"repeat"}
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        return cls(**{k: v for k, v in spec.items() if k in known})


@dataclass
class DeltaRequest:
    """One edge-delta batch addressed at a registered matrix by store key.

    The mutation analogue of :class:`Request`: JSON-friendly (edge lists,
    not arrays), resolved against the store at application time.
    ``Engine.submit_delta`` / ``AsyncServer.apply_delta`` consume it; the
    wire form is ``{"key": "G", "delete": [[r, c], …],
    "insert": [[r, c, v], …], "update": [[r, c, v], …]}``.
    """

    key: str
    insert: list = field(default_factory=list)
    delete: list = field(default_factory=list)
    update: list = field(default_factory=list)
    tag: str = ""

    def to_batch(self):
        from ..delta import DeltaBatch

        return DeltaBatch(insert=self.insert, delete=self.delete,
                          update=self.update)

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "DeltaRequest":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown delta request fields: {sorted(unknown)}")
        if "key" not in spec:
            raise ValueError("delta request needs a 'key' naming the stored "
                             "matrix to mutate")
        return cls(**{k: v for k, v in spec.items() if k in known})


@dataclass
class RequestStats:
    """Per-request execution telemetry."""

    algorithm: str = ""            # resolved kernel (post auto-select)
    kernel_tier: str = ""          # tier that executed the numeric pass
                                   # (native/fused/loop/baseline; "" when no
                                   # kernel ran, e.g. result-cache hits) —
                                   # reflects degradation, unlike `algorithm`
    phases: int = 1
    planned: bool = True           # False for baselines (no symbolic phase)
    plan_cache_hit: bool = False   # plan came from the cache
    plan_reused: bool = False      # numeric pass consumed cached symbolic sizes
    symbolic_skipped: bool = False # two-phase request that ran no symbolic pass
    result_cache_hit: bool = False # whole numeric result came from the cache
    direct_write: bool = False     # numeric pass wrote straight into the
                                   # final CSR arrays (two-phase, fused kernel)
    sharded: bool = False          # numeric pass ran on the shard-worker
                                   # pool (shared-memory direct write)
    coalesced: bool = False        # response shared with an identical
                                   # in-flight request (async server dedup)
    plan_seconds: float = 0.0      # auto-select + symbolic (0 on warm hits)
    numeric_seconds: float = 0.0
    total_seconds: float = 0.0
    queued_seconds: float = 0.0    # admission→execution wait (async server only)
    output_nnz: int = 0
    trace_id: str = ""             # engine trace record id ("" when tracing
                                   # is off); fetch the flame view at
                                   # /trace/<trace_id>.json while retained

    @property
    def serving_tier(self) -> str:
        """Where this request was answered — the label
        ``repro_engine_requests_total{tier=...}`` counts it under:
        ``result`` (whole output from the result cache), ``warm``
        (plan-cache hit), ``cold`` (plan built), ``unplanned``
        (baselines / plan-free)."""
        if self.result_cache_hit:
            return "result"
        if not self.planned:
            return "unplanned"
        return "warm" if self.plan_cache_hit else "cold"

    def as_summary(self) -> dict:
        """Compact JSON-able summary for the flight recorder's request
        ring: enough to reconstruct what a request did without holding
        the matrices or the trace."""
        return {
            "trace_id": self.trace_id,
            "tier": self.serving_tier,
            "algorithm": self.algorithm,
            "kernel_tier": self.kernel_tier,
            "phases": self.phases,
            "sharded": self.sharded,
            "direct_write": self.direct_write,
            "plan_seconds": round(self.plan_seconds, 6),
            "numeric_seconds": round(self.numeric_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "queued_seconds": round(self.queued_seconds, 6),
            "output_nnz": self.output_nnz,
        }

    def as_row(self) -> list:
        """Flat rendering for tables/CSV (bench + CLI reporting)."""
        return [self.algorithm, self.phases,
                "result" if self.result_cache_hit
                else "-" if not self.planned
                else "hit" if self.plan_cache_hit else "miss",
                self.plan_seconds * 1e3, self.numeric_seconds * 1e3,
                self.total_seconds * 1e3, self.output_nnz]


@dataclass
class Response:
    """Result of one request: the output matrix plus its stats."""

    result: CSRMatrix
    stats: RequestStats
    tag: str = ""
    request: Request | None = field(default=None, repr=False)
