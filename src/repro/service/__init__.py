"""Serving layer: a batched masked-SpGEMM execution engine with symbolic
plan caching.

The one-shot :func:`repro.core.masked_spgemm` recomputes everything per
call. Real deployments don't look like that: iterative graph algorithms
(k-truss, MCL, betweenness) and high-traffic services repeatedly multiply
under the *same or slowly-changing mask pattern*, so the pattern-only work —
algorithm auto-selection and the paper's §6 symbolic phase — can be computed
once and amortized. This package is that amortization layer:

* :class:`MatrixStore` — named operand registry with pattern-fingerprint
  memoization, memory accounting and LRU eviction;
* :class:`PlanCache` — fingerprint-keyed LRU of
  :class:`~repro.core.plan.SymbolicPlan` objects;
* :class:`Engine` — resolves requests against the store, serves plans from
  the cache (warm requests skip auto-select *and* the symbolic pass), and
  records per-request/aggregate stats;
* :class:`BatchExecutor` — groups compatible requests and fans a batch out
  across a :mod:`repro.parallel` executor;
* :mod:`~repro.service.workload` — JSON workload specs and replay, the
  ``python -m repro batch`` entry point.

Quickstart::

    from repro import CSRMatrix, csr_random
    from repro.service import Engine, Request

    eng = Engine()
    eng.register("A", csr_random(500, 500, density=0.02, rng=0))
    eng.register("M", csr_random(500, 500, density=0.05, rng=1))
    cold = eng.submit(Request(a="A", b="A", mask="M", phases=2))
    warm = eng.submit(Request(a="A", b="A", mask="M", phases=2))
    assert warm.stats.plan_cache_hit and warm.stats.symbolic_skipped
"""

from .batch import BatchExecutor, BatchResult
from .engine import Engine, EngineStats
from .plan import PlanCache, plan_key
from .requests import Request, RequestStats, Response
from .store import MatrixStore, StoreError, matrix_nbytes
from .workload import expand_requests, load_workload, render_report, replay

__all__ = [
    "Engine",
    "EngineStats",
    "MatrixStore",
    "StoreError",
    "matrix_nbytes",
    "PlanCache",
    "plan_key",
    "BatchExecutor",
    "BatchResult",
    "Request",
    "RequestStats",
    "Response",
    "load_workload",
    "expand_requests",
    "replay",
    "render_report",
]
