"""Serving layer: a batched masked-SpGEMM execution engine with symbolic
plan caching.

The one-shot :func:`repro.core.masked_spgemm` recomputes everything per
call. Real deployments don't look like that: iterative graph algorithms
(k-truss, MCL, betweenness) and high-traffic services repeatedly multiply
under the *same or slowly-changing mask pattern*, so the pattern-only work —
algorithm auto-selection and the paper's §6 symbolic phase — can be computed
once and amortized. This package is that amortization layer:

* :class:`MatrixStore` — named operand registry with pattern- and
  value-fingerprint memoization, memory accounting and LRU eviction;
* :class:`PlanCache` — fingerprint-keyed LRU of
  :class:`~repro.core.plan.SymbolicPlan` objects;
* :class:`ResultCache` — byte-accounted LRU memoizing *whole numeric
  results* keyed on (pattern fingerprints, value hashes) — the tier in
  front of the plan cache;
* :class:`PlanStore` — ``.npz`` persistence for cached plans, so engine
  warm starts survive restarts (``Engine.save_plans`` / ``load_plans``);
* :class:`Engine` — resolves requests against the store, serves results
  and plans from the caches (warm requests skip auto-select *and* the
  symbolic pass; result hits skip everything), and records
  per-request/aggregate stats;
* :class:`BatchExecutor` — groups compatible requests and fans a batch out
  across a :mod:`repro.parallel` executor;
* :class:`AsyncServer` — the asyncio front end: admission queue, bounded
  backpressure (max in-flight / max queued flops), a worker pool draining
  group-compatible batches, graceful shutdown — the ``python -m repro
  serve`` entry point;
* :mod:`~repro.service.workload` — JSON workload specs and replay, the
  ``python -m repro batch`` entry point;
* delta serving (:mod:`repro.delta`, re-exported here) — edge
  insert/delete/update batches mutate a stored operand *in place*:
  value-only deltas carry the pattern fingerprint forward (plans keep
  hitting), pattern deltas re-run symbolic only over the dirty rows and
  splice the cached plan onto the new fingerprint
  (``Engine.apply_delta`` / ``AsyncServer.apply_delta``).

Quickstart::

    from repro import CSRMatrix, csr_random
    from repro.service import Engine, Request

    eng = Engine()
    eng.register("A", csr_random(500, 500, density=0.02, rng=0))
    eng.register("M", csr_random(500, 500, density=0.05, rng=1))
    cold = eng.submit(Request(a="A", b="A", mask="M", phases=2))
    warm = eng.submit(Request(a="A", b="A", mask="M", phases=2))
    assert warm.stats.plan_cache_hit and warm.stats.symbolic_skipped
"""

from ..delta import DeltaBatch, DeltaError, DeltaOutcome
from .batch import BatchExecutor, BatchResult
from .engine import Engine, EngineStats
from .plan import PlanCache, PlanStore, PlanStoreError, plan_key
from .requests import DeltaRequest, Request, RequestStats, Response
from .result_cache import ResultCache, result_key
from .server import AsyncServer, ServerClosed, ServerError, ServerStats, serve_all
from .store import MatrixStore, StoreError, matrix_nbytes
from .workload import (
    expand_requests,
    load_workload,
    register_matrices,
    render_report,
    render_serve_report,
    replay,
)

__all__ = [
    "Engine",
    "EngineStats",
    "MatrixStore",
    "StoreError",
    "matrix_nbytes",
    "PlanCache",
    "PlanStore",
    "PlanStoreError",
    "plan_key",
    "ResultCache",
    "result_key",
    "AsyncServer",
    "ServerClosed",
    "ServerError",
    "ServerStats",
    "serve_all",
    "BatchExecutor",
    "BatchResult",
    "Request",
    "RequestStats",
    "Response",
    "DeltaBatch",
    "DeltaError",
    "DeltaOutcome",
    "DeltaRequest",
    "load_workload",
    "expand_requests",
    "register_matrices",
    "replay",
    "render_report",
    "render_serve_report",
]
