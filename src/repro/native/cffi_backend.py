"""cffi/C backend for the compiled kernel tier.

The portable half of the native ladder (see :mod:`repro.native`): when numba
is not installed but a C compiler is, the same four inner loops the numba
backend JITs are compiled once from the embedded C source below into a
shared object, loaded ABI-mode through :mod:`cffi`, and called with zero-copy
pointers into the operand arrays. cffi releases the GIL for the duration of
every foreign call, which is what lets the thread backend in
:mod:`repro.parallel.runner` scatter chunks concurrently from a plain thread
pool — the same property ``nogil=True`` buys the numba backend.

Build artifacts are content-addressed: the ``.so`` is keyed by the SHA-256 of
the C source (plus the compiler command), cached under
``$REPRO_NATIVE_CACHE`` (default: a per-user directory beneath the system
temp dir) and installed with an atomic rename, so concurrent probes — forked
shard workers, parallel test processes — race benignly and every later
process pays a ``dlopen`` instead of a compile.

Semantics contract (bit-identity with the fused numpy kernels):

* accumulators initialize to the monoid identity and then fold products in
  **stream order** (A-row entries by k ascending, each expanding its B row
  left to right) — exactly what ``np.bincount`` (zero-init + sequential
  adds) and ``np.full(identity)`` + ``ufunc.at`` compute. The first product
  is *added to the identity*, never assigned, so e.g. a lone ``-0.0``
  product lands as ``0.0 + (-0.0) == +0.0`` under ``+``, matching bincount;
* ``min``/``max`` replicate ``np.minimum``/``np.maximum`` NaN handling:
  the accumulate step is ``acc = (acc < x || isnan(acc)) ? acc : x`` (resp.
  ``>``), which returns whichever operand is NaN (the first when both are);
* plain masks gather surviving columns in mask (sorted) order; complemented
  masks emit the sorted distinct surviving columns.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
import tempfile

C_DECLS = """
int64_t msa_plain(const int64_t *a_indptr, const int64_t *a_indices,
                  const double *a_data, const int64_t *b_indptr,
                  const int64_t *b_indices, const double *b_data,
                  const int64_t *m_indptr, const int64_t *m_indices,
                  const int64_t *rows, int64_t nrows,
                  int64_t add_op, int64_t mul_op, double identity,
                  int64_t *offsets, int64_t validate,
                  int64_t *out_cols, double *out_vals,
                  signed char *states, double *values);
int64_t msa_compl(const int64_t *a_indptr, const int64_t *a_indices,
                  const double *a_data, const int64_t *b_indptr,
                  const int64_t *b_indices, const double *b_data,
                  const int64_t *m_indptr, const int64_t *m_indices,
                  const int64_t *rows, int64_t nrows,
                  int64_t add_op, int64_t mul_op, double identity,
                  int64_t *offsets, int64_t validate,
                  int64_t *out_cols, double *out_vals,
                  signed char *states, double *values, int64_t *touched);
int64_t hash_plain(const int64_t *a_indptr, const int64_t *a_indices,
                   const double *a_data, const int64_t *b_indptr,
                   const int64_t *b_indices, const double *b_data,
                   const int64_t *m_indptr, const int64_t *m_indices,
                   const int64_t *rows, int64_t nrows,
                   int64_t add_op, int64_t mul_op, double identity,
                   int64_t *offsets, int64_t validate,
                   int64_t *out_cols, double *out_vals,
                   int64_t *t_keys, signed char *t_state, double *t_vals);
int64_t hash_compl(const int64_t *a_indptr, const int64_t *a_indices,
                   const double *a_data, const int64_t *b_indptr,
                   const int64_t *b_indices, const double *b_data,
                   const int64_t *m_indptr, const int64_t *m_indices,
                   const int64_t *rows, int64_t nrows, const int64_t *nkeys,
                   int64_t add_op, int64_t mul_op, double identity,
                   int64_t *offsets, int64_t validate,
                   int64_t *out_cols, double *out_vals,
                   int64_t *t_keys, signed char *t_state, double *t_vals,
                   int64_t *touched);
"""

C_SOURCE = """
#include <stdint.h>
#include <stdlib.h>
#include <math.h>

typedef int64_t i64;

/* monoid fold step: acc = add(acc, x). Codes mirror repro.native.kernels.
 * min/max replicate np.minimum/np.maximum NaN propagation (return the NaN
 * operand; the first when both are NaN). */
static inline double op_add(i64 op, double acc, double x) {
    switch (op) {
    case 0:  return acc + x;
    case 1:  return (acc < x || isnan(acc)) ? acc : x;   /* np.minimum */
    default: return (acc > x || isnan(acc)) ? acc : x;   /* np.maximum */
    }
}

static inline double op_mul(i64 op, double a, double b) {
    switch (op) {
    case 0:  return a * b;
    case 1:  return 1.0;                                  /* pair */
    case 2:  return a;                                    /* first */
    case 3:  return b;                                    /* second */
    case 4:  return a + b;                                /* plus (min-plus) */
    default: return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;   /* and */
    }
}

/* Fibonacci slot hash, same multiplier as repro.core.hash_kernel. */
static inline i64 hslot(i64 key, i64 cap_mask) {
    return (i64)((((uint64_t)key) * 0x9E3779B97F4A7C15ULL) >> 32) & cap_mask;
}

/* LF-0.25 power-of-two capacity, min 4 (repro.accumulators.table_capacity) */
static inline i64 pow2cap(i64 nkeys) {
    i64 cap = 4;
    i64 need = nkeys * 4;
    while (cap < need) cap <<= 1;
    return cap;
}

static int cmp_i64(const void *pa, const void *pb) {
    i64 a = *(const i64 *)pa, b = *(const i64 *)pb;
    return (a > b) - (a < b);
}

/* Three accumulator states (mirrors repro.core.msa_kernel):
 * plain mask:   0 = not allowed, 1 = allowed (untouched), 2 = set
 * complemented: 0 = untouched,   1 = banned,              2 = set */

i64 msa_plain(const i64 *a_indptr, const i64 *a_indices, const double *a_data,
              const i64 *b_indptr, const i64 *b_indices, const double *b_data,
              const i64 *m_indptr, const i64 *m_indices,
              const i64 *rows, i64 nrows,
              i64 add_op, i64 mul_op, double identity,
              i64 *offsets, i64 validate,
              i64 *out_cols, double *out_vals,
              signed char *states, double *values)
{
    for (i64 r = 0; r < nrows; ++r) {
        i64 i = rows[r];
        i64 ms = m_indptr[i], me = m_indptr[i + 1];
        for (i64 t = ms; t < me; ++t) states[m_indices[t]] = 1;
        for (i64 p = a_indptr[i]; p < a_indptr[i + 1]; ++p) {
            i64 k = a_indices[p];
            double av = a_data[p];
            for (i64 q = b_indptr[k]; q < b_indptr[k + 1]; ++q) {
                i64 j = b_indices[q];
                signed char st = states[j];
                if (st == 0) continue;
                double prod = op_mul(mul_op, av, b_data[q]);
                if (st == 1) {
                    values[j] = op_add(add_op, identity, prod);
                    states[j] = 2;
                } else {
                    values[j] = op_add(add_op, values[j], prod);
                }
            }
        }
        i64 pos;
        if (validate) {
            i64 n = 0;
            for (i64 t = ms; t < me; ++t)
                if (states[m_indices[t]] == 2) n++;
            if (n != offsets[r + 1] - offsets[r]) {
                for (i64 t = ms; t < me; ++t) states[m_indices[t]] = 0;
                return r;
            }
            pos = offsets[r];
        } else {
            pos = offsets[r];
        }
        for (i64 t = ms; t < me; ++t) {
            i64 c = m_indices[t];
            if (states[c] == 2) {
                out_cols[pos] = c;
                out_vals[pos] = values[c];
                pos++;
            }
            states[c] = 0;
        }
        if (!validate) offsets[r + 1] = pos;
    }
    return -1;
}

i64 msa_compl(const i64 *a_indptr, const i64 *a_indices, const double *a_data,
              const i64 *b_indptr, const i64 *b_indices, const double *b_data,
              const i64 *m_indptr, const i64 *m_indices,
              const i64 *rows, i64 nrows,
              i64 add_op, i64 mul_op, double identity,
              i64 *offsets, i64 validate,
              i64 *out_cols, double *out_vals,
              signed char *states, double *values, i64 *touched)
{
    for (i64 r = 0; r < nrows; ++r) {
        i64 i = rows[r];
        i64 ms = m_indptr[i], me = m_indptr[i + 1];
        for (i64 t = ms; t < me; ++t) states[m_indices[t]] = 1;
        i64 nt = 0;
        for (i64 p = a_indptr[i]; p < a_indptr[i + 1]; ++p) {
            i64 k = a_indices[p];
            double av = a_data[p];
            for (i64 q = b_indptr[k]; q < b_indptr[k + 1]; ++q) {
                i64 j = b_indices[q];
                signed char st = states[j];
                if (st == 1) continue;
                double prod = op_mul(mul_op, av, b_data[q]);
                if (st == 0) {
                    values[j] = op_add(add_op, identity, prod);
                    states[j] = 2;
                    touched[nt++] = j;
                } else {
                    values[j] = op_add(add_op, values[j], prod);
                }
            }
        }
        if (validate && nt != offsets[r + 1] - offsets[r]) {
            for (i64 t = 0; t < nt; ++t) states[touched[t]] = 0;
            for (i64 t = ms; t < me; ++t) states[m_indices[t]] = 0;
            return r;
        }
        qsort(touched, (size_t)nt, sizeof(i64), cmp_i64);
        i64 pos = offsets[r];
        for (i64 t = 0; t < nt; ++t) {
            i64 c = touched[t];
            out_cols[pos] = c;
            out_vals[pos] = values[c];
            pos++;
            states[c] = 0;
        }
        for (i64 t = ms; t < me; ++t) states[m_indices[t]] = 0;
        if (!validate) offsets[r + 1] = pos;
    }
    return -1;
}

i64 hash_plain(const i64 *a_indptr, const i64 *a_indices, const double *a_data,
               const i64 *b_indptr, const i64 *b_indices, const double *b_data,
               const i64 *m_indptr, const i64 *m_indices,
               const i64 *rows, i64 nrows,
               i64 add_op, i64 mul_op, double identity,
               i64 *offsets, i64 validate,
               i64 *out_cols, double *out_vals,
               i64 *t_keys, signed char *t_state, double *t_vals)
{
    for (i64 r = 0; r < nrows; ++r) {
        i64 i = rows[r];
        i64 ms = m_indptr[i], me = m_indptr[i + 1];
        i64 cap = pow2cap(me - ms), cm = cap - 1;
        for (i64 s = 0; s < cap; ++s) t_keys[s] = -1;
        for (i64 t = ms; t < me; ++t) {          /* insert allowed columns */
            i64 c = m_indices[t];
            i64 s = hslot(c, cm);
            while (t_keys[s] != -1 && t_keys[s] != c) s = (s + 1) & cm;
            if (t_keys[s] == -1) { t_keys[s] = c; t_state[s] = 1; }
        }
        for (i64 p = a_indptr[i]; p < a_indptr[i + 1]; ++p) {
            i64 k = a_indices[p];
            double av = a_data[p];
            for (i64 q = b_indptr[k]; q < b_indptr[k + 1]; ++q) {
                i64 j = b_indices[q];
                i64 s = hslot(j, cm);
                while (t_keys[s] != -1 && t_keys[s] != j) s = (s + 1) & cm;
                if (t_keys[s] == -1) continue;    /* not in the mask */
                double prod = op_mul(mul_op, av, b_data[q]);
                if (t_state[s] == 1) {
                    t_vals[s] = op_add(add_op, identity, prod);
                    t_state[s] = 2;
                } else {
                    t_vals[s] = op_add(add_op, t_vals[s], prod);
                }
            }
        }
        i64 pos;
        if (validate) {
            i64 n = 0;
            for (i64 t = ms; t < me; ++t) {
                i64 c = m_indices[t];
                i64 s = hslot(c, cm);
                while (t_keys[s] != c) s = (s + 1) & cm;
                if (t_state[s] == 2) n++;
            }
            if (n != offsets[r + 1] - offsets[r]) return r;
        }
        pos = offsets[r];
        for (i64 t = ms; t < me; ++t) {           /* gather in mask order */
            i64 c = m_indices[t];
            i64 s = hslot(c, cm);
            while (t_keys[s] != c) s = (s + 1) & cm;
            if (t_state[s] == 2) {
                out_cols[pos] = c;
                out_vals[pos] = t_vals[s];
                pos++;
            }
        }
        if (!validate) offsets[r + 1] = pos;
    }
    return -1;
}

i64 hash_compl(const i64 *a_indptr, const i64 *a_indices, const double *a_data,
               const i64 *b_indptr, const i64 *b_indices, const double *b_data,
               const i64 *m_indptr, const i64 *m_indices,
               const i64 *rows, i64 nrows, const i64 *nkeys,
               i64 add_op, i64 mul_op, double identity,
               i64 *offsets, i64 validate,
               i64 *out_cols, double *out_vals,
               i64 *t_keys, signed char *t_state, double *t_vals,
               i64 *touched)
{
    for (i64 r = 0; r < nrows; ++r) {
        i64 i = rows[r];
        i64 ms = m_indptr[i], me = m_indptr[i + 1];
        i64 cap = pow2cap(nkeys[r]), cm = cap - 1;
        for (i64 s = 0; s < cap; ++s) t_keys[s] = -1;
        for (i64 t = ms; t < me; ++t) {           /* insert banned columns */
            i64 c = m_indices[t];
            i64 s = hslot(c, cm);
            while (t_keys[s] != -1 && t_keys[s] != c) s = (s + 1) & cm;
            if (t_keys[s] == -1) { t_keys[s] = c; t_state[s] = 1; }
        }
        i64 nt = 0;
        for (i64 p = a_indptr[i]; p < a_indptr[i + 1]; ++p) {
            i64 k = a_indices[p];
            double av = a_data[p];
            for (i64 q = b_indptr[k]; q < b_indptr[k + 1]; ++q) {
                i64 j = b_indices[q];
                i64 s = hslot(j, cm);
                while (t_keys[s] != -1 && t_keys[s] != j) s = (s + 1) & cm;
                double prod;
                if (t_keys[s] == -1) {
                    prod = op_mul(mul_op, av, b_data[q]);
                    t_keys[s] = j;
                    t_state[s] = 2;
                    t_vals[s] = op_add(add_op, identity, prod);
                    touched[nt++] = j;
                } else if (t_state[s] == 2) {
                    prod = op_mul(mul_op, av, b_data[q]);
                    t_vals[s] = op_add(add_op, t_vals[s], prod);
                }                                  /* state 1: banned */
            }
        }
        if (validate && nt != offsets[r + 1] - offsets[r]) return r;
        qsort(touched, (size_t)nt, sizeof(i64), cmp_i64);
        i64 pos = offsets[r];
        for (i64 t = 0; t < nt; ++t) {
            i64 c = touched[t];
            i64 s = hslot(c, cm);
            while (t_keys[s] != c) s = (s + 1) & cm;
            out_cols[pos] = c;
            out_vals[pos] = t_vals[s];
            pos++;
        }
        if (!validate) offsets[r + 1] = pos;
    }
    return -1;
}
"""


def _cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    return os.path.join(tempfile.gettempdir(),
                        f"repro-native-{os.getuid() if hasattr(os, 'getuid') else 'u'}")


def _compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


_FFI = None
_LIB = None


def load():
    """Compile (once, content-addressed) and dlopen the kernel library.

    Raises on any failure — the probe ladder in :mod:`repro.native` treats
    an exception as "this backend is unavailable" and moves on.
    """
    global _FFI, _LIB
    if _LIB is not None:
        return _LIB
    import cffi

    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler on PATH")
    flags = ["-O3", "-fPIC", "-shared"]
    tag = hashlib.sha256(
        (C_SOURCE + "\x00" + cc + " ".join(flags)).encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"repro_native_{tag}.so")
    if not os.path.exists(so_path):
        os.makedirs(cache, exist_ok=True)
        src_path = os.path.join(cache, f"repro_native_{tag}.c")
        tmp_path = f"{so_path}.tmp.{os.getpid()}"
        with open(src_path, "w") as fh:
            fh.write(C_SOURCE)
        subprocess.run([cc, *flags, "-o", tmp_path, src_path, "-lm"],
                       check=True, capture_output=True)
        os.replace(tmp_path, so_path)  # atomic: concurrent builds race benignly
    ffi = cffi.FFI()
    ffi.cdef(C_DECLS)
    lib = ffi.dlopen(so_path)
    _FFI, _LIB = ffi, lib
    return lib


def _p(arr, ctype: str):
    return _FFI.cast(ctype, arr.ctypes.data)


def _i64(arr):
    return _p(arr, "int64_t *")


def _f64(arr):
    return _p(arr, "double *")


def _i8(arr):
    return _p(arr, "signed char *")


# --------------------------------------------------------------------- #
# backend protocol (numpy-array signatures shared with numba_backend)
# --------------------------------------------------------------------- #
def msa_plain(a_indptr, a_indices, a_data, b_indptr, b_indices, b_data,
              m_indptr, m_indices, rows, add_op, mul_op, identity,
              offsets, validate, out_cols, out_vals, states, values) -> int:
    return int(load().msa_plain(
        _i64(a_indptr), _i64(a_indices), _f64(a_data),
        _i64(b_indptr), _i64(b_indices), _f64(b_data),
        _i64(m_indptr), _i64(m_indices), _i64(rows), rows.size,
        add_op, mul_op, identity, _i64(offsets), validate,
        _i64(out_cols), _f64(out_vals), _i8(states), _f64(values)))


def msa_compl(a_indptr, a_indices, a_data, b_indptr, b_indices, b_data,
              m_indptr, m_indices, rows, add_op, mul_op, identity,
              offsets, validate, out_cols, out_vals, states, values,
              touched) -> int:
    return int(load().msa_compl(
        _i64(a_indptr), _i64(a_indices), _f64(a_data),
        _i64(b_indptr), _i64(b_indices), _f64(b_data),
        _i64(m_indptr), _i64(m_indices), _i64(rows), rows.size,
        add_op, mul_op, identity, _i64(offsets), validate,
        _i64(out_cols), _f64(out_vals), _i8(states), _f64(values),
        _i64(touched)))


def hash_plain(a_indptr, a_indices, a_data, b_indptr, b_indices, b_data,
               m_indptr, m_indices, rows, add_op, mul_op, identity,
               offsets, validate, out_cols, out_vals, t_keys, t_state,
               t_vals) -> int:
    return int(load().hash_plain(
        _i64(a_indptr), _i64(a_indices), _f64(a_data),
        _i64(b_indptr), _i64(b_indices), _f64(b_data),
        _i64(m_indptr), _i64(m_indices), _i64(rows), rows.size,
        add_op, mul_op, identity, _i64(offsets), validate,
        _i64(out_cols), _f64(out_vals), _i64(t_keys), _i8(t_state),
        _f64(t_vals)))


def hash_compl(a_indptr, a_indices, a_data, b_indptr, b_indices, b_data,
               m_indptr, m_indices, rows, nkeys, add_op, mul_op, identity,
               offsets, validate, out_cols, out_vals, t_keys, t_state,
               t_vals, touched) -> int:
    return int(load().hash_compl(
        _i64(a_indptr), _i64(a_indices), _f64(a_data),
        _i64(b_indptr), _i64(b_indices), _f64(b_data),
        _i64(m_indptr), _i64(m_indices), _i64(rows), rows.size, _i64(nkeys),
        add_op, mul_op, identity, _i64(offsets), validate,
        _i64(out_cols), _f64(out_vals), _i64(t_keys), _i8(t_state),
        _f64(t_vals), _i64(touched)))
