"""repro.native — the compiled (JIT/C) kernel tier.

The fused numpy kernels (PRs 2+4) are bound by numpy dispatch overhead, not
memory traffic; this package supplies the tight compiled inner loops the
paper's C++ numbers imply, behind the existing kernel registry as the
``msa-native`` / ``hash-native`` routing tiers (``listed=False`` — execution
strategies of msa/hash, not new algorithms).

Backend ladder, probed lazily and memoized (à la
:func:`repro.shard.memory.shared_memory_available`):

1. **numba** (:mod:`repro.native.numba_backend`) — JIT with
   ``nopython=True, nogil=True, cache=True``; the preferred tier, installed
   via ``pip install repro[native]``;
2. **cffi/C** (:mod:`repro.native.cffi_backend`) — the same loops compiled
   from embedded C source with whatever C compiler is on PATH, loaded
   ABI-mode; covers boxes with a toolchain but no numba;
3. **unavailable** — every native entry point delegates to the fused numpy
   kernels, ``native_available()`` is False, ``auto_select`` keeps routing
   to the fused keys, and nothing anywhere needs a guard.

A backend only becomes *the* backend after passing a bit-identity self-test
against the fused kernels on tiny fixtures (probing doubles as JIT warmup,
so :meth:`repro.service.Engine.__init__` calling :func:`warmup` moves the
compile off the request path and records it as
``repro_native_compile_seconds``).

``REPRO_NATIVE`` overrides the ladder: ``off`` disables the tier entirely,
``numba`` / ``cffi`` pin one backend (probe failure then means unavailable,
no fallthrough). Both compiled backends release the GIL for the whole
kernel call, which is what the thread backend in
:mod:`repro.parallel.runner` (``backend="thread"``) builds on.
"""

from __future__ import annotations

import os
import threading
import time

__all__ = ["native_available", "native_backend", "native_backend_name",
           "warmup", "kernels"]

_LOCK = threading.RLock()
_PROBED = False
_BACKEND: tuple[str, object] | None = None
_PROBE_SECONDS = 0.0


def _probe() -> tuple[str, object] | None:
    global _PROBED, _BACKEND, _PROBE_SECONDS
    if _PROBED:
        return _BACKEND
    with _LOCK:
        if _PROBED:
            return _BACKEND
        mode = os.environ.get("REPRO_NATIVE", "auto").strip().lower()
        order = {"auto": ("numba", "cffi"), "": ("numba", "cffi"),
                 "numba": ("numba",), "cffi": ("cffi",), "c": ("cffi",),
                 }.get(mode, ())
        if mode in ("off", "0", "none", "disabled"):
            order = ()
        backend = None
        t0 = time.perf_counter()
        for name in order:
            try:
                if name == "numba":
                    from . import numba_backend as mod
                else:
                    from . import cffi_backend as mod
                    mod.load()
                from . import kernels

                kernels.self_test(mod)  # bit-identity gate + forced compile
                backend = (name, mod)
                break
            except Exception:
                continue
        _PROBE_SECONDS = time.perf_counter() - t0
        _BACKEND = backend
        _PROBED = True
        return _BACKEND


def native_backend() -> tuple[str, object] | None:
    """The resolved ``(name, module)`` backend, or None. First call probes
    (compiles); later calls are a memoized read."""
    return _probe()


def native_backend_name() -> str | None:
    b = _probe()
    return None if b is None else b[0]


def native_available() -> bool:
    """True when a compiled backend passed its probe on this machine."""
    return _probe() is not None


def warmup(metrics=None) -> float:
    """Resolve + compile the native tier off the request path.

    Returns the probe duration in seconds (memoized — a second engine in
    the same process reports the same number without recompiling; 0.0 when
    the tier is unavailable). When ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`) is given, records the duration as
    the ``repro_native_compile_seconds`` gauge either way, so dashboards
    can tell "compiled in 3s at startup" from "tier absent".
    """
    _probe()
    seconds = _PROBE_SECONDS
    if metrics is not None:
        metrics.gauge(
            "repro_native_compile_seconds",
            "Seconds spent probing + JIT/C-compiling the native kernel "
            "tier at engine construction (0 when the tier is unavailable "
            "or was already compiled by an earlier engine)",
        ).set(seconds if native_available() else 0.0)
    return seconds if native_available() else 0.0


def _reset_probe() -> None:
    """Forget the memoized probe (tests flip ``REPRO_NATIVE`` around this)."""
    global _PROBED, _BACKEND, _PROBE_SECONDS
    with _LOCK:
        _PROBED = False
        _BACKEND = None
        _PROBE_SECONDS = 0.0
