"""numba backend for the compiled kernel tier.

The preferred half of the native ladder (see :mod:`repro.native`): when
numba is importable, the four inner loops are JIT-compiled with
``nopython=True, nogil=True, cache=True`` — nopython so nothing falls back
to object mode, nogil so the thread backend in
:mod:`repro.parallel.runner` gets real parallelism from a plain thread
pool, cache so the compilation cost is paid once per machine (the probe in
:mod:`repro.native` runs a tiny product through every entry point, which
both validates the toolchain and forces compilation off the request path).

Importing this module raises ``ImportError`` when numba is absent; the
probe ladder treats that as "backend unavailable" and falls through to the
cffi/C backend. The loop bodies are a line-for-line mirror of the C source
in :mod:`repro.native.cffi_backend` — see that module's docstring for the
bit-identity contract (identity-init + stream-order accumulation,
numpy-faithful min/max NaN handling, mask-order vs sorted-complement
gathers).
"""

from __future__ import annotations

import numpy as np
from numba import jit

_JIT = dict(nopython=True, nogil=True, cache=True)


@jit(**_JIT)
def _op_add(op, acc, x):
    if op == 0:
        return acc + x
    if op == 1:                       # np.minimum: NaN operand wins
        return acc if (acc < x or acc != acc) else x
    return acc if (acc > x or acc != acc) else x   # np.maximum


@jit(**_JIT)
def _op_mul(op, a, b):
    if op == 0:
        return a * b
    if op == 1:                       # pair
        return 1.0
    if op == 2:                       # first
        return a
    if op == 3:                       # second
        return b
    if op == 4:                       # plus (min-plus)
        return a + b
    return 1.0 if (a != 0.0 and b != 0.0) else 0.0   # and


@jit(**_JIT)
def _hslot(key, cap_mask):
    return np.int64((np.uint64(key) * np.uint64(0x9E3779B97F4A7C15))
                    >> np.uint64(32)) & cap_mask


@jit(**_JIT)
def _pow2cap(nkeys):
    cap = np.int64(4)
    need = nkeys * 4
    while cap < need:
        cap <<= 1
    return cap


@jit(**_JIT)
def msa_plain(a_indptr, a_indices, a_data, b_indptr, b_indices, b_data,
              m_indptr, m_indices, rows, add_op, mul_op, identity,
              offsets, validate, out_cols, out_vals, states, values):
    for r in range(rows.size):
        i = rows[r]
        ms, me = m_indptr[i], m_indptr[i + 1]
        for t in range(ms, me):
            states[m_indices[t]] = 1
        for p in range(a_indptr[i], a_indptr[i + 1]):
            k = a_indices[p]
            av = a_data[p]
            for q in range(b_indptr[k], b_indptr[k + 1]):
                j = b_indices[q]
                st = states[j]
                if st == 0:
                    continue
                prod = _op_mul(mul_op, av, b_data[q])
                if st == 1:
                    values[j] = _op_add(add_op, identity, prod)
                    states[j] = 2
                else:
                    values[j] = _op_add(add_op, values[j], prod)
        if validate:
            n = 0
            for t in range(ms, me):
                if states[m_indices[t]] == 2:
                    n += 1
            if n != offsets[r + 1] - offsets[r]:
                for t in range(ms, me):
                    states[m_indices[t]] = 0
                return r
        pos = offsets[r]
        for t in range(ms, me):
            c = m_indices[t]
            if states[c] == 2:
                out_cols[pos] = c
                out_vals[pos] = values[c]
                pos += 1
            states[c] = 0
        if not validate:
            offsets[r + 1] = pos
    return -1


@jit(**_JIT)
def msa_compl(a_indptr, a_indices, a_data, b_indptr, b_indices, b_data,
              m_indptr, m_indices, rows, add_op, mul_op, identity,
              offsets, validate, out_cols, out_vals, states, values,
              touched):
    for r in range(rows.size):
        i = rows[r]
        ms, me = m_indptr[i], m_indptr[i + 1]
        for t in range(ms, me):
            states[m_indices[t]] = 1
        nt = 0
        for p in range(a_indptr[i], a_indptr[i + 1]):
            k = a_indices[p]
            av = a_data[p]
            for q in range(b_indptr[k], b_indptr[k + 1]):
                j = b_indices[q]
                st = states[j]
                if st == 1:
                    continue
                prod = _op_mul(mul_op, av, b_data[q])
                if st == 0:
                    values[j] = _op_add(add_op, identity, prod)
                    states[j] = 2
                    touched[nt] = j
                    nt += 1
                else:
                    values[j] = _op_add(add_op, values[j], prod)
        if validate and nt != offsets[r + 1] - offsets[r]:
            for t in range(nt):
                states[touched[t]] = 0
            for t in range(ms, me):
                states[m_indices[t]] = 0
            return r
        touched[:nt].sort()
        pos = offsets[r]
        for t in range(nt):
            c = touched[t]
            out_cols[pos] = c
            out_vals[pos] = values[c]
            pos += 1
            states[c] = 0
        for t in range(ms, me):
            states[m_indices[t]] = 0
        if not validate:
            offsets[r + 1] = pos
    return -1


@jit(**_JIT)
def hash_plain(a_indptr, a_indices, a_data, b_indptr, b_indices, b_data,
               m_indptr, m_indices, rows, add_op, mul_op, identity,
               offsets, validate, out_cols, out_vals, t_keys, t_state,
               t_vals):
    for r in range(rows.size):
        i = rows[r]
        ms, me = m_indptr[i], m_indptr[i + 1]
        cap = _pow2cap(me - ms)
        cm = cap - 1
        for s in range(cap):
            t_keys[s] = -1
        for t in range(ms, me):
            c = m_indices[t]
            s = _hslot(c, cm)
            while t_keys[s] != -1 and t_keys[s] != c:
                s = (s + 1) & cm
            if t_keys[s] == -1:
                t_keys[s] = c
                t_state[s] = 1
        for p in range(a_indptr[i], a_indptr[i + 1]):
            k = a_indices[p]
            av = a_data[p]
            for q in range(b_indptr[k], b_indptr[k + 1]):
                j = b_indices[q]
                s = _hslot(j, cm)
                while t_keys[s] != -1 and t_keys[s] != j:
                    s = (s + 1) & cm
                if t_keys[s] == -1:
                    continue
                prod = _op_mul(mul_op, av, b_data[q])
                if t_state[s] == 1:
                    t_vals[s] = _op_add(add_op, identity, prod)
                    t_state[s] = 2
                else:
                    t_vals[s] = _op_add(add_op, t_vals[s], prod)
        if validate:
            n = 0
            for t in range(ms, me):
                c = m_indices[t]
                s = _hslot(c, cm)
                while t_keys[s] != c:
                    s = (s + 1) & cm
                if t_state[s] == 2:
                    n += 1
            if n != offsets[r + 1] - offsets[r]:
                return r
        pos = offsets[r]
        for t in range(ms, me):
            c = m_indices[t]
            s = _hslot(c, cm)
            while t_keys[s] != c:
                s = (s + 1) & cm
            if t_state[s] == 2:
                out_cols[pos] = c
                out_vals[pos] = t_vals[s]
                pos += 1
        if not validate:
            offsets[r + 1] = pos
    return -1


@jit(**_JIT)
def hash_compl(a_indptr, a_indices, a_data, b_indptr, b_indices, b_data,
               m_indptr, m_indices, rows, nkeys, add_op, mul_op, identity,
               offsets, validate, out_cols, out_vals, t_keys, t_state,
               t_vals, touched):
    for r in range(rows.size):
        i = rows[r]
        ms, me = m_indptr[i], m_indptr[i + 1]
        cap = _pow2cap(nkeys[r])
        cm = cap - 1
        for s in range(cap):
            t_keys[s] = -1
        for t in range(ms, me):
            c = m_indices[t]
            s = _hslot(c, cm)
            while t_keys[s] != -1 and t_keys[s] != c:
                s = (s + 1) & cm
            if t_keys[s] == -1:
                t_keys[s] = c
                t_state[s] = 1
        nt = 0
        for p in range(a_indptr[i], a_indptr[i + 1]):
            k = a_indices[p]
            av = a_data[p]
            for q in range(b_indptr[k], b_indptr[k + 1]):
                j = b_indices[q]
                s = _hslot(j, cm)
                while t_keys[s] != -1 and t_keys[s] != j:
                    s = (s + 1) & cm
                if t_keys[s] == -1:
                    prod = _op_mul(mul_op, av, b_data[q])
                    t_keys[s] = j
                    t_state[s] = 2
                    t_vals[s] = _op_add(add_op, identity, prod)
                    touched[nt] = j
                    nt += 1
                elif t_state[s] == 2:
                    prod = _op_mul(mul_op, av, b_data[q])
                    t_vals[s] = _op_add(add_op, t_vals[s], prod)
        if validate and nt != offsets[r + 1] - offsets[r]:
            return r
        touched[:nt].sort()
        pos = offsets[r]
        for t in range(nt):
            c = touched[t]
            s = _hslot(c, cm)
            while t_keys[s] != c:
                s = (s + 1) & cm
            out_cols[pos] = c
            out_vals[pos] = t_vals[s]
            pos += 1
        if not validate:
            offsets[r + 1] = pos
    return -1
