"""Protocol faces of the compiled kernel tier.

These wrap whichever backend the probe ladder resolved (numba JIT or
cffi/C — see the package docstring) behind the repo-wide kernel protocol,
so the registry specs ``msa-native`` / ``hash-native`` are just another
pair of kernels:

``msa_numeric_rows`` / ``hash_numeric_rows``
    stitch face — compute requested rows compactly and return a RowBlock;
``msa_numeric_rows_into`` / ``hash_numeric_rows_into``
    direct-write face — scatter into preallocated CSR arrays at planned
    offsets, validating computed sizes first (same contract and same error
    as :func:`repro.core.types.write_block_into`).

Every face **delegates to the fused numpy kernel** when the compiled tier
cannot serve the call — backend unavailable, a semiring outside the
compiled op table, non-float64/int64 operands, or an MSA output too wide
for the dense accumulator scratch. The fused kernels are bit-identical to
the compiled loops by construction (gated in ``tests/test_native.py`` and
``benchmarks/bench_native.py``), so delegation is invisible to callers:
the native keys always compute the same product, merely slower.

The symbolic pass is pattern-only and kernel-independent; the registry
points the native specs at the fused symbolic functions directly.
"""

from __future__ import annotations

import numpy as np

from ..errors import AlgorithmError
from ..validation import INDEX_DTYPE

#: widest MSA output the dense accumulator scratch is worth allocating for;
#: beyond this the hash table (or the fused kernel's composite keys) wins
MSA_NCOLS_CAP = 1 << 22

_ADD_CODES = None   # np.ufunc -> code (0 plus, 1 min, 2 max)
_MUL_CODES = None   # mul callable -> code (0 times, 1 pair, 2 first,
                    #                       3 second, 4 plus, 5 and)


def _op_tables():
    """Codes keyed by the *objects* of the standard semirings, so custom
    :class:`~repro.semiring.Semiring` instances built from the same monoid
    ufuncs and multiply functions compile too; anything else delegates."""
    global _ADD_CODES, _MUL_CODES
    if _ADD_CODES is None:
        from ..semiring.standard import (
            MAX_TIMES,
            MIN_PLUS,
            OR_AND,
            PLUS_FIRST,
            PLUS_PAIR,
            PLUS_SECOND,
            PLUS_TIMES,
        )

        _ADD_CODES = {PLUS_TIMES.add.ufunc: 0, MIN_PLUS.add.ufunc: 1,
                      MAX_TIMES.add.ufunc: 2, OR_AND.add.ufunc: 2}
        _MUL_CODES = {PLUS_TIMES.mul: 0, PLUS_PAIR.mul: 1, PLUS_FIRST.mul: 2,
                      PLUS_SECOND.mul: 3, MIN_PLUS.mul: 4, OR_AND.mul: 5}
    return _ADD_CODES, _MUL_CODES


def op_codes(semiring) -> tuple[int, int, float] | None:
    """(add_op, mul_op, identity) for the compiled switch, or None when the
    semiring is outside the compiled table (→ delegate to fused)."""
    adds, muls = _op_tables()
    add = adds.get(semiring.add.ufunc)
    mul = muls.get(semiring.mul)
    if add is None or mul is None:
        return None
    return add, mul, float(semiring.add.identity)


def supported(semiring) -> bool:
    """True when the compiled tier can execute this semiring itself."""
    return op_codes(semiring) is not None


def _backend():
    from . import native_backend

    b = native_backend()
    return None if b is None else b[1]


def _compilable(A, B, mask) -> bool:
    return all(a.dtype == INDEX_DTYPE for a in
               (A.indptr, A.indices, B.indptr, B.indices,
                mask.indptr, mask.indices)) and \
        A.data.dtype == np.float64 and B.data.dtype == np.float64


def _c(arr):
    return np.ascontiguousarray(arr)


def _pow2cap(nkeys: int) -> int:
    cap = 4
    need = int(nkeys) * 4
    while cap < need:
        cap <<= 1
    return cap


def _compl_bounds(A, B, mask, rows):
    """Per-row output upper bound + hash-table key budget for complemented
    masks: distinct surviving columns ≤ min(flops_i, ncols − banned_i)."""
    from ..core.expand import per_row_flops

    mlens = mask.indptr[rows + 1] - mask.indptr[rows]
    flops = per_row_flops(A, B)[rows] if A.nnz else np.zeros_like(mlens)
    bound = np.minimum(flops, B.ncols - mlens)
    return mlens, bound, mlens + bound


# --------------------------------------------------------------------- #
# MSA (dense three-state accumulator)
# --------------------------------------------------------------------- #
def _msa_call(be, A, B, mask, rows, codes, offsets, validate,
              out_cols, out_vals):
    add_op, mul_op, identity = codes
    ncols = B.ncols
    states = np.zeros(ncols, dtype=np.int8)
    values = np.empty(ncols, dtype=np.float64)
    args = (_c(A.indptr), _c(A.indices), _c(A.data),
            _c(B.indptr), _c(B.indices), _c(B.data),
            _c(mask.indptr), _c(mask.indices), rows,
            add_op, mul_op, identity, offsets, validate,
            out_cols, out_vals, states, values)
    if mask.complemented:
        touched = np.empty(ncols, dtype=INDEX_DTYPE)
        return be.msa_compl(*args, touched)
    return be.msa_plain(*args)


def msa_numeric_rows(A, B, mask, semiring, rows):
    from ..core import msa_kernel
    from ..core.types import RowBlock, empty_block

    rows = np.ascontiguousarray(rows, dtype=INDEX_DTYPE)
    be, codes = _backend(), op_codes(semiring)
    if (be is None or codes is None or not _compilable(A, B, mask)
            or B.ncols > MSA_NCOLS_CAP):
        return msa_kernel.numeric_rows(A, B, mask, semiring, rows)
    if rows.size == 0:
        return empty_block(0)
    if mask.complemented:
        _, per_row_bound, _ = _compl_bounds(A, B, mask, rows)
        bound = int(per_row_bound.sum())
    else:
        bound = int((mask.indptr[rows + 1] - mask.indptr[rows]).sum())
    offsets = np.zeros(rows.size + 1, dtype=INDEX_DTYPE)
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    _msa_call(be, A, B, mask, rows, codes, offsets, 0, out_cols, out_vals)
    total = int(offsets[-1])
    return RowBlock(np.diff(offsets), out_cols[:total], out_vals[:total])


def msa_numeric_rows_into(A, B, mask, semiring, rows, out_cols, out_vals,
                          offsets):
    from ..core import msa_kernel

    rows = np.ascontiguousarray(rows, dtype=INDEX_DTYPE)
    be, codes = _backend(), op_codes(semiring)
    if (be is None or codes is None or not _compilable(A, B, mask)
            or B.ncols > MSA_NCOLS_CAP):
        return msa_kernel.numeric_rows_into(A, B, mask, semiring, rows,
                                            out_cols, out_vals, offsets)
    if rows.size == 0:
        return
    offsets = np.ascontiguousarray(offsets, dtype=INDEX_DTYPE)
    bad = _msa_call(be, A, B, mask, rows, codes, offsets, 1,
                    out_cols, out_vals)
    if bad >= 0:
        raise AlgorithmError(
            "msa-native: computed row sizes differ from the planned offsets "
            "— stale plan (operand patterns changed since the symbolic "
            "pass) or kernel divergence"
        )


# --------------------------------------------------------------------- #
# Hash (per-row open-addressing table, LF 0.25, Fibonacci slots)
# --------------------------------------------------------------------- #
def _hash_call(be, A, B, mask, rows, codes, offsets, validate,
               out_cols, out_vals):
    add_op, mul_op, identity = codes
    if mask.complemented:
        _, _, nkeys = _compl_bounds(A, B, mask, rows)
        nkeys = np.ascontiguousarray(nkeys, dtype=INDEX_DTYPE)
        cap = _pow2cap(int(nkeys.max()) if nkeys.size else 0)
    else:
        mlens = mask.indptr[rows + 1] - mask.indptr[rows]
        nkeys = None
        cap = _pow2cap(int(mlens.max()) if mlens.size else 0)
    t_keys = np.empty(cap, dtype=INDEX_DTYPE)
    t_state = np.empty(cap, dtype=np.int8)
    t_vals = np.empty(cap, dtype=np.float64)
    args = (_c(A.indptr), _c(A.indices), _c(A.data),
            _c(B.indptr), _c(B.indices), _c(B.data),
            _c(mask.indptr), _c(mask.indices), rows)
    tail = (codes[0], codes[1], identity, offsets, validate,
            out_cols, out_vals, t_keys, t_state, t_vals)
    if mask.complemented:
        touched = np.empty(cap, dtype=INDEX_DTYPE)
        return be.hash_compl(*args, nkeys, *tail, touched)
    return be.hash_plain(*args, *tail)


def hash_numeric_rows(A, B, mask, semiring, rows):
    from ..core import hash_kernel
    from ..core.types import RowBlock, empty_block

    rows = np.ascontiguousarray(rows, dtype=INDEX_DTYPE)
    be, codes = _backend(), op_codes(semiring)
    if be is None or codes is None or not _compilable(A, B, mask):
        return hash_kernel.numeric_rows(A, B, mask, semiring, rows)
    if rows.size == 0:
        return empty_block(0)
    if mask.complemented:
        _, per_row_bound, _ = _compl_bounds(A, B, mask, rows)
        bound = int(per_row_bound.sum())
    else:
        bound = int((mask.indptr[rows + 1] - mask.indptr[rows]).sum())
    offsets = np.zeros(rows.size + 1, dtype=INDEX_DTYPE)
    out_cols = np.empty(bound, dtype=INDEX_DTYPE)
    out_vals = np.empty(bound, dtype=np.float64)
    _hash_call(be, A, B, mask, rows, codes, offsets, 0, out_cols, out_vals)
    total = int(offsets[-1])
    return RowBlock(np.diff(offsets), out_cols[:total], out_vals[:total])


def hash_numeric_rows_into(A, B, mask, semiring, rows, out_cols, out_vals,
                           offsets):
    from ..core import hash_kernel

    rows = np.ascontiguousarray(rows, dtype=INDEX_DTYPE)
    be, codes = _backend(), op_codes(semiring)
    if be is None or codes is None or not _compilable(A, B, mask):
        return hash_kernel.numeric_rows_into(A, B, mask, semiring, rows,
                                             out_cols, out_vals, offsets)
    if rows.size == 0:
        return
    offsets = np.ascontiguousarray(offsets, dtype=INDEX_DTYPE)
    bad = _hash_call(be, A, B, mask, rows, codes, offsets, 1,
                     out_cols, out_vals)
    if bad >= 0:
        raise AlgorithmError(
            "hash-native: computed row sizes differ from the planned "
            "offsets — stale plan (operand patterns changed since the "
            "symbolic pass) or kernel divergence"
        )


# --------------------------------------------------------------------- #
# probe self-test
# --------------------------------------------------------------------- #
def self_test(backend_mod) -> None:
    """Validate one backend end to end on tiny fixtures, bit-exactly against
    the fused numpy kernels (the probe's correctness gate, à la
    ``shared_memory_available``'s write/read probe). Also forces JIT /
    ``dlopen`` so the compile cost lands here, off the request path."""
    from ..core import hash_kernel, msa_kernel
    from ..mask import Mask
    from ..semiring import MIN_PLUS, PLUS_TIMES
    from ..sparse.csr import CSRMatrix

    rng = np.random.default_rng(1234)
    n = 16
    dense = (rng.random((n, n)) < 0.3) * rng.standard_normal((n, n))
    indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    cols, vals = [], []
    for i in range(n):
        nz = np.flatnonzero(dense[i])
        indptr[i + 1] = indptr[i] + nz.size
        cols.append(nz.astype(INDEX_DTYPE))
        vals.append(dense[i, nz])
    A = CSRMatrix(indptr, np.concatenate(cols), np.concatenate(vals), (n, n))
    m_dense = rng.random((n, n)) < 0.4
    m_indptr = np.zeros(n + 1, dtype=INDEX_DTYPE)
    m_cols = []
    for i in range(n):
        nz = np.flatnonzero(m_dense[i]).astype(INDEX_DTYPE)
        m_indptr[i + 1] = m_indptr[i] + nz.size
        m_cols.append(nz)
    rows = np.arange(n, dtype=INDEX_DTYPE)

    import unittest.mock as mock

    for complemented in (False, True):
        mask = Mask(m_indptr.copy(), np.concatenate(m_cols), (n, n),
                    complemented=complemented)
        for semiring in (PLUS_TIMES, MIN_PLUS):
            want_msa = msa_kernel.numeric_rows(A, A, mask, semiring, rows)
            want_hash = hash_kernel.numeric_rows(A, A, mask, semiring, rows)
            with mock.patch(f"{__name__}._backend",
                            lambda m=backend_mod: m):
                got_msa = msa_numeric_rows(A, A, mask, semiring, rows)
                got_hash = hash_numeric_rows(A, A, mask, semiring, rows)
                # direct-write face against the stitch face's sizes
                offs = np.zeros(n + 1, dtype=INDEX_DTYPE)
                np.cumsum(got_msa.sizes, out=offs[1:])
                into_cols = np.empty(int(offs[-1]), dtype=INDEX_DTYPE)
                into_vals = np.empty(int(offs[-1]), dtype=np.float64)
                msa_numeric_rows_into(A, A, mask, semiring, rows,
                                      into_cols, into_vals, offs)
                hash_into_cols = np.empty(int(offs[-1]), dtype=INDEX_DTYPE)
                hash_into_vals = np.empty(int(offs[-1]), dtype=np.float64)
                hash_numeric_rows_into(A, A, mask, semiring, rows,
                                       hash_into_cols, hash_into_vals, offs)
            for want, got in ((want_msa, got_msa), (want_hash, got_hash)):
                if not (np.array_equal(want.sizes, got.sizes)
                        and np.array_equal(want.cols, got.cols)
                        and np.array_equal(want.vals, got.vals)):
                    raise RuntimeError(
                        f"native self-test mismatch (complemented="
                        f"{complemented}, semiring={semiring.name})")
            if not (np.array_equal(into_cols, want_msa.cols)
                    and np.array_equal(into_vals, want_msa.vals)
                    and np.array_equal(hash_into_cols, want_hash.cols)
                    and np.array_equal(hash_into_vals, want_hash.vals)):
                raise RuntimeError(
                    f"native self-test direct-write mismatch (complemented="
                    f"{complemented}, semiring={semiring.name})")
