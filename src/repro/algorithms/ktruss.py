"""k-truss via iterated Masked SpGEMM (paper §8.3).

The k-truss of a graph is the maximal subgraph in which every edge is
supported by at least k-2 triangles. The GraphBLAS formulation (Davis,
HPEC'18 — the paper's reference [15]) iterates:

    S = C ⊙ (C·C)  with PLUS_PAIR      # S[i,j] = #triangles on edge (i,j)
    C = pattern of entries of S with support ≥ k-2

until the edge set stops changing. "Masked SpGEMM in an iterative manner
where the graph keeps changing due to pruning of some edges" — note the mask
*is* the shrinking graph itself, so mask density decays over iterations,
which is why pull-based Inner does unexpectedly well here (paper §8.3).

Every product is routed through a :class:`repro.service.Engine`, so the
pattern-only work (algorithm auto-selection, the two-phase symbolic pass) is
planned once per distinct edge-set pattern. Within one run each iteration's
pattern is new (edges were just pruned), but a *served* workload — the same
truss query replayed on an unchanged graph, or several k values sweeping the
same decomposition — replays the same pattern sequence and every iteration
after the first run becomes a plan-cache hit. Pass a shared ``engine`` to
get that amortization; without one, a private engine still caches across
iterations of the single call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.expand import total_flops
from ..semiring import PLUS_PAIR
from ..sparse import ops
from ..sparse.csr import CSRMatrix
from ..graphs.prep import to_undirected_simple


@dataclass
class KTrussResult:
    """k-truss output plus the per-iteration telemetry the paper's GFLOPS
    metric needs ("the sum of flops required to perform all Masked SpGEMM
    operations divided by total time", §8.3)."""

    subgraph: CSRMatrix
    iterations: int
    flops_per_iteration: list[int] = field(default_factory=list)
    nnz_per_iteration: list[int] = field(default_factory=list)
    #: plan-cache hits observed during each iteration's masked product — all
    #: zeros on a cold engine, all ones when the engine has served this graph
    #: (pattern sequence) before.
    plan_hits_per_iteration: list[int] = field(default_factory=list)

    @property
    def total_flops(self) -> int:
        return 2 * sum(self.flops_per_iteration)  # multiply + add convention

    @property
    def plan_hits(self) -> int:
        return sum(self.plan_hits_per_iteration)


def ktruss(g: CSRMatrix, k: int, *, algorithm: str = "msa", phases: int = 1,
           executor=None, prepared: bool = False, max_iterations: int = 1000,
           engine=None) -> KTrussResult:
    """Compute the k-truss of an undirected graph.

    Parameters
    ----------
    g : adjacency pattern (symmetrized/cleaned unless ``prepared=True``).
    k : truss order (k ≥ 2; the paper benchmarks k=5). k=2 returns the
        input (every edge is trivially in 0 ≥ 0 triangles).
    algorithm, phases, executor : forwarded to every masked product.
    engine : optional :class:`repro.service.Engine` whose plan cache is
        shared across calls (repeated queries on the same graph reuse every
        iteration's plan). A private engine is created when omitted; when an
        engine is provided, its own executor takes precedence over
        ``executor``.
    """
    if k < 2:
        raise ValueError(f"k-truss needs k >= 2, got {k}")
    if engine is None:
        from ..service import Engine

        engine = Engine(executor=executor)
    C = (g if prepared else to_undirected_simple(g)).pattern()
    support_needed = k - 2
    if support_needed == 0:
        # every edge is trivially supported; no multiplication needed
        return KTrussResult(C, 0, [], [])
    flops_log: list[int] = []
    nnz_log: list[int] = []
    hits_log: list[int] = []

    for it in range(1, max_iterations + 1):
        if C.nnz == 0:
            return KTrussResult(C, it - 1, flops_log, nnz_log, hits_log)
        flops_log.append(total_flops(C, C))
        nnz_log.append(C.nnz)
        hits_before = engine.plans.hits
        S = engine.multiply(C, C, C, algorithm=algorithm,
                            semiring=PLUS_PAIR, phases=phases,
                            tag=f"ktruss-it{it}").result
        hits_log.append(engine.plans.hits - hits_before)
        # keep edges with enough support; S misses edges with zero triangles,
        # which is precisely "support 0", so pruning via S is exact for k>2.
        kept = ops.prune(S, tol=support_needed - 0.5).pattern()
        if kept.nnz == C.nnz:
            return KTrussResult(kept, it, flops_log, nnz_log, hits_log)
        C = kept
    raise RuntimeError(f"k-truss failed to converge in {max_iterations} iterations")


def _edge_coords(m: CSRMatrix):
    """Stored (row, col) coordinates of ``m`` as an (nnz, 2) array — the
    :class:`~repro.delta.DeltaBatch` ndarray fast path."""
    import numpy as np

    rows = np.repeat(np.arange(m.nrows), m.row_nnz())
    return np.column_stack((rows, m.indices))


def ktruss_delta(g: CSRMatrix, k: int, *, algorithm: str = "msa",
                 phases: int = 2, prepared: bool = False,
                 max_iterations: int = 1000, engine=None,
                 store_key: str = "ktruss:C") -> KTrussResult:
    """k-truss iterated via pattern deltas (the streaming-serving path).

    Same fixpoint as :func:`ktruss`, different economics: the support matrix
    is *registered once* under ``store_key`` and each iteration's pruned
    edges are applied as a delete-only :class:`~repro.delta.DeltaBatch`.
    :meth:`Engine.apply_delta` then splices the previous iteration's cached
    :class:`~repro.core.plan.SymbolicPlan` onto the new fingerprint — the
    symbolic pass re-runs only over rows whose edges changed (each pruned
    edge's mask-admitted common-neighbor set, not the full neighborhood) —
    and, when the engine carries a result cache, *patches* the previous
    product by recomputing only those dirty output rows, so iteration
    ``i+1`` serves from the result tier instead of re-running the numeric
    pass. Output is bit-identical to :func:`ktruss` on the same inputs;
    two-phase execution is the default because that is where spliced plans
    pay. The private engine (when none is passed) enables a result cache
    for exactly this reason.
    """
    if k < 2:
        raise ValueError(f"k-truss needs k >= 2, got {k}")
    if engine is None:
        from ..service import Engine

        engine = Engine(result_cache_bytes=512 << 20)
    from ..service import Request

    C = (g if prepared else to_undirected_simple(g)).pattern()
    support_needed = k - 2
    if support_needed == 0:
        return KTrussResult(C, 0, [], [])
    engine.register(store_key, C)
    req = Request(a=store_key, b=store_key, mask=store_key,
                  algorithm=algorithm, phases=phases, semiring="plus_pair")
    flops_log: list[int] = []
    nnz_log: list[int] = []
    hits_log: list[int] = []
    try:
        for it in range(1, max_iterations + 1):
            if C.nnz == 0:
                return KTrussResult(C, it - 1, flops_log, nnz_log, hits_log)
            flops_log.append(total_flops(C, C))
            nnz_log.append(C.nnz)
            hits_before = engine.plans.hits
            rhits_before = (engine.results.hits
                            if engine.results is not None else 0)
            req.tag = f"ktruss-delta-it{it}"
            S = engine.submit(req).result
            # a result-tier hit (delta-patched product) bypasses the plan
            # lookup entirely; both tiers count as "served warm" here
            hits_log.append((engine.plans.hits - hits_before)
                            + ((engine.results.hits - rhits_before)
                               if engine.results is not None else 0))
            kept = ops.prune(S, tol=support_needed - 0.5).pattern()
            if kept.nnz == C.nnz:
                return KTrussResult(kept, it, flops_log, nnz_log, hits_log)
            pruned = ops.pattern_difference(C, kept)
            from ..delta import DeltaBatch

            engine.apply_delta(store_key,
                               DeltaBatch(delete=_edge_coords(pruned)))
            C = kept
    finally:
        engine.evict(store_key)
    raise RuntimeError(
        f"k-truss failed to converge in {max_iterations} iterations")
