"""Triangle counting via Masked SpGEMM (paper §8.2).

The paper's formulation: relabel vertices in non-increasing degree order
(known to be among the fastest orderings [29]), take the strictly-lower
triangle L, and compute ``sum(L .* (L·L))`` — which in masked form is one
``C = L ⊙ (L·L)`` with the PLUS_PAIR semiring followed by a
reduce-to-scalar. Each triangle {i, j, k} with relabeled i > j > k is
counted exactly once, at C[i, j].
"""

from __future__ import annotations

from ..core import masked_spgemm
from ..mask import Mask
from ..semiring import PLUS_PAIR
from ..sparse.csr import CSRMatrix
from ..graphs.prep import triangle_prep


def triangle_count_matrix(L: CSRMatrix, *, algorithm: str = "msa",
                          phases: int = 1, executor=None) -> CSRMatrix:
    """The masked product at TC's core: ``C = L ⊙ (L·L)`` (plus_pair).

    ``C[i, j]`` counts the common neighbours of i and j that close a
    triangle over edge (i, j). This is the operation the paper times in
    isolation ("we only report the Masked SpGEMM execution time").
    """
    return masked_spgemm(L, L, Mask.from_matrix(L), algorithm=algorithm,
                         semiring=PLUS_PAIR, phases=phases, executor=executor)


def triangle_count(g: CSRMatrix, *, algorithm: str = "msa", phases: int = 1,
                   executor=None, prepared: bool = False) -> int:
    """Total number of triangles in the (undirected) graph ``g``.

    Parameters
    ----------
    g : adjacency pattern; symmetrized/cleaned automatically unless
        ``prepared=True``, in which case ``g`` must already be the
        degree-sorted strictly-lower-triangular ``L``.
    algorithm, phases, executor : forwarded to :func:`masked_spgemm`.
    """
    L = g if prepared else triangle_prep(g)
    C = triangle_count_matrix(L, algorithm=algorithm, phases=phases,
                              executor=executor)
    return int(round(C.sum()))
