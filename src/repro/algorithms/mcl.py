"""Markov clustering (MCL) — the SpGEMM application family of the paper's
background (§2 cites van Dongen's MCL [36] and HipMCL [35] as SpGEMM
workloads).

MCL alternates **expansion** (matrix powers — the SpGEMM), **inflation**
(element-wise powering + column re-normalization, which sharpens flow) and
**pruning** (dropping near-zero entries to keep the iterate sparse) on a
column-stochastic flow matrix until a fixpoint; connected components of the
final support are the clusters. Not a *masked* workload, but it exercises
plain SpGEMM, element-wise ops and pruning — and gives the library the
clustering capability its SpGEMM substrate exists to serve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import spgemm
from ..graphs.prep import to_undirected_simple
from ..sparse import ops
from ..sparse.csr import CSRMatrix
from ..sparse.construct import csr_eye
from ..validation import INDEX_DTYPE


@dataclass
class MCLResult:
    labels: np.ndarray                 # cluster id per vertex
    n_clusters: int
    iterations: int
    nnz_history: list[int] = field(default_factory=list)
    #: plan-cache hits per iteration when the run went through an Engine.
    #: MCL's support typically stabilizes several rounds before the values
    #: converge, so the tail of this list is naturally nonzero: identical
    #: patterns, changed values — exactly the reuse the plan cache targets.
    plan_hits_per_iteration: list[int] = field(default_factory=list)

    @property
    def plan_hits(self) -> int:
        return sum(self.plan_hits_per_iteration)


def _column_normalize(m: CSRMatrix) -> CSRMatrix:
    """Scale columns to sum 1 (column-stochastic flow matrix)."""
    colsum = np.zeros(m.ncols, dtype=np.float64)
    np.add.at(colsum, m.indices, m.data)
    scale = np.ones_like(colsum)
    nz = colsum > 0
    scale[nz] = 1.0 / colsum[nz]
    return CSRMatrix(m.indptr.copy(), m.indices.copy(),
                     m.data * scale[m.indices], m.shape, check=False)


def _inflate(m: CSRMatrix, power: float) -> CSRMatrix:
    return _column_normalize(ops.scale_values(m, lambda v: np.power(v, power)))


def _connected_components(m: CSRMatrix) -> tuple[np.ndarray, int]:
    """Union-find over the symmetrized support of ``m``."""
    n = m.nrows
    parent = np.arange(n, dtype=INDEX_DTYPE)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = int(parent[x])
        return x

    rows = np.repeat(np.arange(n, dtype=INDEX_DTYPE), m.row_nnz())
    for i, j in zip(rows, m.indices):
        ri, rj = find(int(i)), find(int(j))
        if ri != rj:
            parent[ri] = rj
    roots = np.array([find(int(v)) for v in range(n)], dtype=INDEX_DTYPE)
    uniq, labels = np.unique(roots, return_inverse=True)
    return labels.astype(INDEX_DTYPE), int(uniq.size)


def markov_clustering(
    g: CSRMatrix,
    *,
    expansion: int = 2,
    inflation: float = 2.0,
    prune_threshold: float = 1e-4,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
    self_loops: float = 1.0,
    engine=None,
    algorithm: str = "auto",
) -> MCLResult:
    """Cluster an undirected graph with the MCL process.

    Parameters
    ----------
    g : adjacency pattern/weights (symmetrized and de-looped internally).
    expansion : power of the flow matrix per round (≥ 2; 2 is canonical).
    inflation : element-wise exponent (> 1; higher → finer clusters).
    prune_threshold : entries below this are dropped after each round.
    self_loops : weight added on the diagonal (stabilizes convergence).
    engine : optional :class:`repro.service.Engine`. When given, every
        expansion product is routed through it (as an unmasked product with
        ``algorithm``/two-phase planning), so iterations whose flow-matrix
        pattern has stabilized reuse cached symbolic plans — and repeated
        clustering calls on the same graph reuse them across calls. When
        omitted the classic plain-SpGEMM path runs, bit-identical to before.
    """
    if expansion < 2:
        raise ValueError(f"expansion must be >= 2, got {expansion}")
    if inflation <= 1.0:
        raise ValueError(f"inflation must be > 1, got {inflation}")
    if engine is None and algorithm != "auto":
        raise ValueError(
            f"algorithm={algorithm!r} requires engine=; the engine-less path "
            f"always runs plain SpGEMM"
        )
    n = g.nrows
    if n == 0:
        return MCLResult(np.empty(0, dtype=INDEX_DTYPE), 0, 0)
    A = to_undirected_simple(g)
    loops = ops.scale_values(csr_eye(n), lambda v: v * self_loops)
    M = _column_normalize(ops.ewise_add(A.pattern(), loops))

    nnz_history: list[int] = []
    hits_log: list[int] = []
    for it in range(1, max_iterations + 1):
        nnz_history.append(M.nnz)
        expanded = M
        hits_before = engine.plans.hits if engine is not None else 0
        for _ in range(expansion - 1):
            if engine is not None:
                expanded = engine.multiply(expanded, M, None,
                                           algorithm=algorithm, phases=2,
                                           tag=f"mcl-it{it}").result
            else:
                expanded = spgemm(expanded, M)
        if engine is not None:
            hits_log.append(engine.plans.hits - hits_before)
        nxt = _inflate(expanded, inflation)
        nxt = _column_normalize(ops.prune(nxt, prune_threshold))
        if nxt.same_pattern(M) and np.allclose(nxt.data, M.data,
                                               atol=tolerance, rtol=0.0):
            M = nxt
            break
        M = nxt
    labels, k = _connected_components(M)
    return MCLResult(labels, k, it, nnz_history, hits_log)
