"""Graph applications built on Masked SpGEMM (the paper's three benchmarks
plus a bonus multi-source BFS).

Each application is "implemented within the GraphBLAS specifications,
substituting Masked SpGEMM operations with calls to different algorithms"
(paper §7) — i.e. every function takes an ``algorithm=`` knob that selects
the masked kernel under test.
"""

from .triangle_count import triangle_count, triangle_count_matrix
from .ktruss import ktruss, ktruss_delta
from .betweenness import betweenness_centrality
from .bfs import multi_source_bfs
from .clustering import (
    average_clustering,
    clustering_coefficients,
    triangles_per_vertex,
)
from .direction_bfs import direction_optimized_bfs
from .mcl import markov_clustering

__all__ = [
    "triangle_count",
    "triangle_count_matrix",
    "ktruss",
    "ktruss_delta",
    "betweenness_centrality",
    "multi_source_bfs",
    "clustering_coefficients",
    "average_clustering",
    "triangles_per_vertex",
    "direction_optimized_bfs",
    "markov_clustering",
]
