"""Batch betweenness centrality via Masked SpGEMM (paper §8.4).

Multi-source two-stage Brandes [8] in the linear-algebra formulation
(GraphBLAS C API's canonical example, which the paper cites as the
motivating use of *complemented* masks):

**Forward (BFS) stage** — batch of s sources, matrices are s×n:

    NumSP[j, src_j] = 1
    Frontier = ¬NumSP ⊙ (NumSP · A)        (PLUS_FIRST semiring)
    while Frontier ≠ ∅:
        record S_d = pattern(Frontier)
        NumSP += Frontier
        Frontier = ¬NumSP ⊙ (Frontier · A)  (complemented Masked SpGEMM!)

The complemented mask expresses "extend paths only to vertices not yet
discovered" — the graph-traversal use the paper highlights in §1.

**Backward (dependency) stage**:

    BCU = 1 (dense s×n)
    for d = depth-1 .. 1:
        W  = S_d ⊙ (BCU / NumSP)
        W  = S_{d-1} ⊙ (W · Aᵀ)            (non-complemented Masked SpGEMM)
        BCU += W .* NumSP
    centrality(v) = Σ_j BCU[j, v] - s

Both stages together exercise the complemented and plain mask paths, which
is why the paper's BC results (Fig. 15/16) include only complement-capable
kernels (MCA is excluded; Inner/Heap/SS:DOT were "prohibitively slow").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core import masked_spgemm
from ..mask import Mask
from ..semiring import PLUS_FIRST
from ..sparse import ops
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE


@dataclass
class BCResult:
    """Centrality scores plus traversal telemetry (for the TEPS metric)."""

    centrality: np.ndarray
    depth: int
    batch_size: int
    frontier_nnz: list[int] = field(default_factory=list)


def _sources_matrix(sources: np.ndarray, n: int) -> CSRMatrix:
    """s×n matrix with a single 1 per row at (j, sources[j])."""
    s = sources.size
    indptr = np.arange(s + 1, dtype=INDEX_DTYPE)
    return CSRMatrix(indptr, sources.astype(INDEX_DTYPE), np.ones(s), (s, n),
                     check=False)


def _values_at(pattern: CSRMatrix, source: CSRMatrix) -> np.ndarray:
    """Values of ``source`` at the coordinates of ``pattern`` (which must be
    a subset of source's pattern)."""
    taken = ops.ewise_mult(pattern.pattern(), source, op=lambda x, y: y)
    if taken.nnz != pattern.nnz:  # pragma: no cover - invariant guard
        raise RuntimeError("pattern is not a subset of source pattern")
    return taken.data


def betweenness_centrality(
    g: CSRMatrix,
    sources: Sequence[int] | None = None,
    *,
    algorithm: str = "msa",
    phases: int = 1,
    executor=None,
    undirected: bool | None = None,
) -> BCResult:
    """Betweenness centrality from a batch of source vertices.

    Parameters
    ----------
    g : adjacency pattern (directed as stored; pass a symmetric pattern for
        undirected graphs).
    sources : batch of source vertex ids; ``None`` = all vertices (exact BC).
    algorithm : masked kernel for both stages; must support complemented
        masks (msa/hash/heap/heapdot — MCA raises, matching the paper).
    undirected : divide scores by 2 (each shortest path counted from both
        endpoints). Default: auto-detect pattern symmetry.

    Returns unnormalized scores comparable to
    ``networkx.betweenness_centrality(normalized=False)``.
    """
    n = g.nrows
    A = g.pattern()
    if undirected is None:
        undirected = A.same_pattern(ops.transpose_csr(A))
    src = (np.arange(n, dtype=INDEX_DTYPE) if sources is None
           else np.asarray(list(sources), dtype=INDEX_DTYPE))
    s = src.size
    if s == 0 or n == 0:
        return BCResult(np.zeros(n), 0, 0)

    AT = ops.transpose_csr(A)

    # ---------------- forward: BFS with path counting ------------------- #
    NumSP = _sources_matrix(src, n)
    frontier = masked_spgemm(NumSP, A, Mask.from_matrix(NumSP, complemented=True),
                             algorithm=algorithm, semiring=PLUS_FIRST,
                             phases=phases, executor=executor)
    sigmas: list[CSRMatrix] = []
    frontier_nnz: list[int] = []
    while frontier.nnz:
        sigmas.append(frontier)
        frontier_nnz.append(frontier.nnz)
        NumSP = ops.ewise_add(NumSP, frontier)
        frontier = masked_spgemm(
            frontier, A, Mask.from_matrix(NumSP, complemented=True),
            algorithm=algorithm, semiring=PLUS_FIRST, phases=phases,
            executor=executor)
    depth = len(sigmas)

    # ---------------- backward: dependency accumulation ----------------- #
    bcu = np.ones((s, n), dtype=np.float64)
    src_rows = np.repeat(np.arange(s, dtype=INDEX_DTYPE), 1)
    for d in range(depth - 1, 0, -1):
        Sd = sigmas[d]
        # W = S_d ⊙ ((BCU) / NumSP) — gather dense BCU at S_d coords
        rows = np.repeat(np.arange(s, dtype=INDEX_DTYPE), Sd.row_nnz())
        numsp_at = _values_at(Sd, NumSP)
        w_vals = bcu[rows, Sd.indices] / numsp_at
        W = CSRMatrix(Sd.indptr.copy(), Sd.indices.copy(), w_vals, (s, n),
                      check=False)
        # W = S_{d-1} ⊙ (W · Aᵀ)
        W = masked_spgemm(W, AT, Mask.from_matrix(sigmas[d - 1]),
                          algorithm=algorithm, semiring=PLUS_FIRST,
                          phases=phases, executor=executor)
        # BCU += W .* NumSP
        rows_w = np.repeat(np.arange(s, dtype=INDEX_DTYPE), W.row_nnz())
        numsp_at_w = _values_at(W, NumSP)
        bcu[rows_w, W.indices] += W.data * numsp_at_w

    centrality = bcu.sum(axis=0) - s
    if undirected:
        centrality = centrality / 2.0
    return BCResult(centrality, depth, int(s), frontier_nnz)
