"""Direction-optimizing BFS — Beamer's push-pull traversal on masked SpMV.

The paper's §4 derives its push/pull taxonomy from this algorithm
(references [5], [7], [38]): process small frontiers top-down (push:
frontier scatters to out-neighbours, masked by ¬visited) and large
frontiers bottom-up (pull: each *unvisited* vertex checks its in-neighbours
for frontier membership — the mask is the unvisited set itself).

Returned telemetry records the direction chosen per level, so tests can
assert the switch actually happens on high-diameter vs hub-heavy graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.spmv import masked_spmv, pull_work_estimate, push_work_estimate
from ..semiring import OR_AND
from ..sparse.csr import CSRMatrix
from ..sparse.vector import SparseVector
from ..validation import INDEX_DTYPE

#: Beamer's alpha: prefer pull once frontier work exceeds this multiple of
#: the remaining unvisited work (classic values 14-15 for scale-free graphs;
#: 1.0 here because both sides share the same vectorized constants).
DEFAULT_ALPHA = 1.0


@dataclass
class DirectionBFSResult:
    levels: np.ndarray              # BFS depth per vertex, -1 unreachable
    directions: list[str] = field(default_factory=list)  # per level
    frontier_sizes: list[int] = field(default_factory=list)


def direction_optimized_bfs(g: CSRMatrix, source: int, *,
                            alpha: float = DEFAULT_ALPHA,
                            force: str | None = None) -> DirectionBFSResult:
    """Single-source BFS switching push/pull per level.

    Parameters
    ----------
    g : adjacency pattern (rows = out-edges).
    source : start vertex.
    alpha : work-ratio threshold for switching to pull.
    force : "push" or "pull" to disable the optimization (for comparison).
    """
    n = g.nrows
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    A = g.pattern()
    a_csc = A.to_csc()

    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = SparseVector(np.array([source], dtype=INDEX_DTYPE),
                            np.ones(1), n, check=False)
    result = DirectionBFSResult(levels)
    depth = 0
    while frontier.nnz:
        depth += 1
        unvisited = np.flatnonzero(~visited).astype(INDEX_DTYPE)
        if force in ("push", "pull"):
            direction = force
        else:
            push_w = push_work_estimate(frontier, A)
            pull_w = pull_work_estimate(unvisited, a_csc)
            direction = "pull" if pull_w < alpha * push_w else "push"
        if direction == "pull":
            # mask = unvisited set; pull asks "does any in-neighbour belong
            # to the frontier?" for exactly those vertices
            mask = SparseVector(unvisited, np.ones(unvisited.size), n,
                                check=False)
            nxt = masked_spmv(frontier, A, mask, direction="pull",
                              semiring=OR_AND, a_csc=a_csc)
        else:
            visited_vec = SparseVector(
                np.flatnonzero(visited).astype(INDEX_DTYPE),
                np.ones(int(visited.sum())), n, check=False)
            nxt = masked_spmv(frontier, A, visited_vec, complemented=True,
                              direction="push", semiring=OR_AND)
        result.directions.append(direction)
        result.frontier_sizes.append(nxt.nnz)
        if nxt.nnz == 0:
            break
        levels[nxt.indices] = depth
        visited[nxt.indices] = True
        frontier = nxt
    return result
