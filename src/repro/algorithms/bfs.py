"""Multi-source BFS with complemented masks (bonus application).

Not one of the paper's three benchmarks, but the cleanest illustration of
its motivating sentence: masked products implement "any multi-source graph
traversal where the mask serves as a filter to avoid rediscovery of
previously discovered vertices" (§1). Each BFS step is

    Frontier = ¬Visited ⊙ (Frontier · A)

on the OR_AND boolean semiring.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core import masked_spgemm
from ..mask import Mask
from ..semiring import OR_AND
from ..sparse import ops
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE
from .betweenness import _sources_matrix


def multi_source_bfs(g: CSRMatrix, sources: Sequence[int], *,
                     algorithm: str = "msa", executor=None) -> np.ndarray:
    """BFS levels from each source.

    Returns an (s, n) int array: entry [j, v] is the BFS depth of vertex v
    from ``sources[j]`` (0 for the source itself), or -1 if unreachable.
    """
    n = g.nrows
    A = g.pattern()
    src = np.asarray(list(sources), dtype=INDEX_DTYPE)
    s = src.size
    levels = np.full((s, n), -1, dtype=np.int64)
    if s == 0 or n == 0:
        return levels
    levels[np.arange(s), src] = 0

    visited = _sources_matrix(src, n)
    frontier = visited
    depth = 0
    while frontier.nnz:
        depth += 1
        frontier = masked_spgemm(
            frontier, A, Mask.from_matrix(visited, complemented=True),
            algorithm=algorithm, semiring=OR_AND, executor=executor)
        if frontier.nnz == 0:
            break
        rows = np.repeat(np.arange(s, dtype=INDEX_DTYPE), frontier.row_nnz())
        levels[rows, frontier.indices] = depth
        visited = ops.pattern_union(visited, frontier)
    return levels
