"""Local clustering coefficients via the TC masked product (bonus app).

The per-edge triangle counts that ``C = L ⊙ (L·L)`` produces are exactly
what local clustering coefficients need: the number of triangles through
vertex v is the sum of C's entries in v's row *and* column (each triangle
{i>j>k} is stored once at (i, j) but involves three vertices), and

    cc(v) = 2·triangles(v) / (deg(v)·(deg(v)-1)).

One more consumer of the paper's primary kernel, validated against
networkx.clustering.
"""

from __future__ import annotations

import numpy as np

from ..core import masked_spgemm
from ..mask import Mask
from ..semiring import PLUS_PAIR
from ..sparse.csr import CSRMatrix
from ..graphs.prep import to_undirected_simple


def triangles_per_vertex(g: CSRMatrix, *, algorithm: str = "msa",
                         prepared: bool = False) -> np.ndarray:
    """Number of triangles through each vertex.

    Uses the symmetric identity ``triangles(v) = ((A ⊙ (A·A)) row-sum)/2``:
    the masked product's (v, w) entry counts common neighbours of the edge
    (v, w), so summing row v counts each of v's triangles twice (once per
    incident edge). Unlike the global count this keeps original vertex ids,
    so no degree relabeling is applied.
    """
    A = g if prepared else to_undirected_simple(g)
    S = masked_spgemm(A, A, Mask.from_matrix(A), algorithm=algorithm,
                      semiring=PLUS_PAIR)
    return S.row_sums() / 2.0


def clustering_coefficients(g: CSRMatrix, *, algorithm: str = "msa") -> np.ndarray:
    """Local clustering coefficient per vertex (0 where degree < 2)."""
    A = to_undirected_simple(g)
    tri = triangles_per_vertex(A, algorithm=algorithm, prepared=True)
    deg = A.row_nnz().astype(np.float64)
    possible = deg * (deg - 1) / 2.0
    out = np.zeros(A.nrows, dtype=np.float64)
    ok = possible > 0
    out[ok] = tri[ok] / possible[ok]
    return out


def average_clustering(g: CSRMatrix, *, algorithm: str = "msa") -> float:
    """Graph-average clustering coefficient (networkx convention: mean over
    all vertices, zeros included)."""
    cc = clustering_coefficients(g, algorithm=algorithm)
    return float(cc.mean()) if cc.size else 0.0
