"""Row-parallel Masked SpGEMM driver.

Flow: estimate per-row work → cut contiguous flops-balanced chunks (sized by
the cache-aware :func:`repro.parallel.partition.chunk_budget`, not worker
count) → run the kernel per chunk on the executor → assemble the final CSR
matrix. Assembly has two modes:

* **direct write** (default whenever exact ``row_sizes`` are known, i.e. a
  two-phase request with a cached plan *or* a freshly-run symbolic pass):
  ``indptr/indices/data`` are preallocated from the row sizes and each chunk
  scatters into its disjoint slice via the kernel's ``numeric_rows_into`` —
  zero stitch copies, which is the point of the paper's two-phase
  formulation (§6);
* **stitch** (one-phase requests, kernels without a direct-write variant,
  and the process executor, whose children cannot write parent memory):
  per-chunk :class:`RowBlock` results are concatenated as before.

Two-phase requests without a plan no longer throw the symbolic results
away: the per-chunk sizes are captured into an *implied*
:class:`~repro.core.plan.SymbolicPlan` that feeds the direct-write numeric
pass and is exposed through ``plan_sink`` so callers get plan reuse for
free. Warm requests carrying a cached plan (``plan=``) skip the symbolic
map entirely, so a warm request runs zero Python-per-row work end to end.

Process-pool support: operands are parked in module globals under a token
before the pool forks, so children inherit them via copy-on-write and tasks
carry only ``(token, chunk_of_row_ids)``. Semirings are passed *by name*
(pickling lambdas is a trap); custom semiring objects therefore require a
thread/serial/simulated executor.
"""

from __future__ import annotations

import itertools
import time
from typing import Optional

import numpy as np

from ..errors import AlgorithmError
from ..obs.metrics import current_chunk_observer
from ..obs.trace import current_record
from ..mask import Mask
from ..semiring import PLUS_TIMES, Semiring
from ..semiring.standard import _REGISTRY as _SEMIRING_REGISTRY
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE, check_multiplicable
from ..core import registry
from ..core.plan import SymbolicPlan
from ..core.types import stitch_blocks
from .executor import ProcessExecutor, ThreadExecutor
from .partition import (
    NATIVE_BYTES_PER_FLOP,
    balanced_partition,
    budget_chunk_count,
    chunk_budget,
    estimate_row_weights,
)

# ---------------------------------------------------------------------- #
# process-pool plumbing: context parked in globals pre-fork
# ---------------------------------------------------------------------- #
_CONTEXTS: dict[int, tuple] = {}
_TOKENS = itertools.count()


def _chunk_task(args):
    """Top-level (picklable) task: run one chunk against the parked context."""
    token, rows, phase = args
    A, B, mask, algorithm, semiring_name = _CONTEXTS[token]
    spec = registry.get_spec(algorithm)
    semiring = _SEMIRING_REGISTRY[semiring_name]
    if phase == "symbolic":
        return spec.symbolic(A, B, mask, rows)
    return spec.numeric(A, B, mask, semiring, rows)


def uses_direct_write(algorithm: str, phases: int, executor=None,
                      row_sizes_known: bool = True) -> bool:
    """Will the runner take the direct-write path for this configuration?

    True when the kernel has a ``numeric_rows_into`` variant, the request is
    two-phase with (cached or captured) row sizes, and the executor keeps a
    shared address space. Exposed so telemetry (``RequestStats``) can report
    the path without re-deriving the conditions.
    """
    if phases != 2 or not row_sizes_known:
        return False
    if isinstance(executor, ProcessExecutor):
        return False
    try:
        spec = registry.get_spec(algorithm)
    except AlgorithmError:
        return False
    return spec.numeric_into is not None


def direct_write_numeric(spec, A, B, mask, semiring, chunks, row_sizes,
                         out_shape, executor) -> CSRMatrix:
    """Preallocate the final CSR arrays from exact ``row_sizes`` and let
    each chunk scatter into its disjoint slice (chunks are contiguous row
    ranges, so each one's destination offsets are a slice of ``indptr``)."""
    nrows, ncols = out_shape
    indptr = np.zeros(nrows + 1, dtype=INDEX_DTYPE)
    np.cumsum(row_sizes, out=indptr[1:])
    nnz = int(indptr[-1])
    cols = np.empty(nnz, dtype=INDEX_DTYPE)
    vals = np.empty(nnz, dtype=np.float64)
    into = spec.numeric_into
    # the active trace record and chunk-metric sink are captured *here*, on
    # the submitting thread: contextvars do not propagate into thread-pool
    # workers, so chunk closures carry both explicitly (None/None → the
    # zero-cost path). One perf_counter pair feeds both, so the histogram
    # stays bit-identical to the span when tracing is on — and populated
    # when it is off.
    rec = current_record()
    sink = current_chunk_observer()
    trace_id = rec.trace_id if rec is not None else None

    def run(chunk):
        offsets = indptr[int(chunk[0]): int(chunk[-1]) + 2]
        if rec is None and sink is None:
            into(A, B, mask, semiring, chunk, cols, vals, offsets)
            return
        t0 = time.perf_counter()
        into(A, B, mask, semiring, chunk, cols, vals, offsets)
        t1 = time.perf_counter()
        if rec is not None:
            rec.add_span("chunk", t0, t1, kernel=spec.key,
                         phase="numeric", rows=len(chunk))
        if sink is not None:
            sink(t1 - t0, spec.key, "numeric", trace_id)

    executor.map(run, chunks)
    return CSRMatrix(indptr, cols, vals, out_shape, check=False)


def parallel_masked_spgemm(
    A: CSRMatrix,
    B: CSRMatrix,
    mask: Mask,
    *,
    algorithm: str = "msa",
    semiring: Semiring = PLUS_TIMES,
    phases: int = 1,
    executor=None,
    nchunks: Optional[int] = None,
    plan=None,
    plan_sink: Optional[list] = None,
    direct_write: bool = True,
    backend: str = "local",
) -> CSRMatrix:
    """Row-parallel ``C = M ⊙ (A·B)`` on the given executor.

    ``plan`` (a :class:`repro.core.plan.SymbolicPlan` with cached row sizes)
    makes the two-phase symbolic map a no-op: the sizes are already known, so
    only the numeric chunks are dispatched. Without a plan, a two-phase run
    captures its symbolic chunk results into an implied plan (appended to
    ``plan_sink`` when given) that feeds the direct-write numeric pass.
    ``direct_write=False`` forces the stitch path — the A/B knob the chunk
    benchmarks use.

    ``backend`` selects the execution substrate: ``"local"`` (this runner's
    chunked executor path), ``"shard"``, which routes the product through
    :func:`repro.shard.shard_masked_spgemm` — a transient shard-worker pool
    whose workers scatter into a shared-memory output CSR (``executor``'s
    ``nworkers`` sizes the pool; the executor itself is not used) — or
    ``"thread"``: the compiled-tier successor to process shards. The thread
    backend rewrites the algorithm to its native variant (when the
    :mod:`repro.native` probe passes), runs on a
    :class:`~repro.parallel.executor.ThreadExecutor` (``executor`` when it
    is one, else a transient pool sized to the machine), and scatters
    chunks straight into the preallocated CSR slices — the compiled kernels
    release the GIL for the whole chunk call, so this gets real parallelism
    with no processes and no shared-memory segments. Ineligible requests
    degrade back to the local path inside the shard layer, and the thread
    backend without a native backend is simply the local thread-pool path,
    so results are identical for every backend.
    """
    if backend not in ("local", "shard", "thread"):
        raise AlgorithmError(
            f"unknown backend {backend!r}; use 'local', 'thread' or 'shard'")
    if backend == "thread":
        import os

        own = None
        if not isinstance(executor, ThreadExecutor):
            nworkers = (executor.nworkers if executor is not None
                        else min(8, os.cpu_count() or 2))
            own = executor = ThreadExecutor(max(int(nworkers), 1))
        try:
            return parallel_masked_spgemm(
                A, B, mask, algorithm=registry.native_variant(algorithm),
                semiring=semiring, phases=phases, executor=executor,
                nchunks=nchunks, plan=plan, plan_sink=plan_sink,
                direct_write=direct_write, backend="local")
        finally:
            if own is not None:
                own.close()
    if backend == "shard":
        from ..shard import shard_masked_spgemm

        nshards = executor.nworkers if executor is not None else 2
        return shard_masked_spgemm(
            A, B, mask, algorithm=algorithm, semiring=semiring,
            phases=phases, nshards=max(int(nshards), 1), plan=plan,
            plan_sink=plan_sink, executor=executor,
            direct_write=direct_write)
    out_shape = check_multiplicable(A.shape, B.shape)
    mask.check_output_shape(out_shape)
    spec = registry.get_spec(algorithm)
    if executor is None:
        from .executor import SerialExecutor

        executor = SerialExecutor()

    weights = estimate_row_weights(A, B, mask, algorithm)
    if nchunks is None:
        # the compiled loops stream ~1/3 the bytes per partial product of
        # the fused pipeline, so native chunks carry 3x the flops for the
        # same cache share (fewer dispatches, same residency)
        budget = (chunk_budget(bytes_per_flop=NATIVE_BYTES_PER_FLOP)
                  if spec.key.endswith("-native") else None)
        nchunks = budget_chunk_count(weights, executor.nworkers, budget)
    chunks = balanced_partition(weights, nchunks)
    if not chunks:
        return CSRMatrix.empty(out_shape)

    row_sizes = (plan.row_sizes
                 if plan is not None and phases == 2 else None)
    is_process = isinstance(executor, ProcessExecutor)
    token = None
    if is_process:
        if semiring.name not in _SEMIRING_REGISTRY:
            raise AlgorithmError(
                f"process executor requires a registered semiring (got "
                f"{semiring.name!r}); use a thread or serial executor for "
                f"custom semirings"
            )
        token = next(_TOKENS)
        _CONTEXTS[token] = (A, B, mask, algorithm, semiring.name)
    # captured on the submitting thread (pool threads don't inherit the
    # trace/sink contextvars); process pools stay uninstrumented — children
    # cannot write the parent's record or registry
    rec = None if is_process else current_record()
    sink = None if is_process else current_chunk_observer()
    trace_id = rec.trace_id if rec is not None else None

    def timed(fn, phase):
        if rec is None and sink is None:
            return fn

        def wrapped(chunk):
            t0 = time.perf_counter()
            out = fn(chunk)
            t1 = time.perf_counter()
            if rec is not None:
                rec.add_span("chunk", t0, t1, kernel=spec.key,
                             phase=phase, rows=len(chunk))
            if sink is not None:
                sink(t1 - t0, spec.key, phase, trace_id)
            return out
        return wrapped

    try:
        if phases == 2 and row_sizes is None:
            # capture the symbolic chunk results (previously discarded) into
            # the row sizes that drive the direct-write numeric pass
            if is_process:
                sym = executor.map(_chunk_task,
                                   [(token, c, "symbolic") for c in chunks])
            else:
                sym = executor.map(
                    timed(lambda c: spec.symbolic(A, B, mask, c),
                          "symbolic"), chunks)
            row_sizes = (sym[0] if len(sym) == 1
                         else np.concatenate(sym)).astype(INDEX_DTYPE,
                                                          copy=False)
            if plan_sink is not None:
                plan_sink.append(SymbolicPlan(
                    algorithm=algorithm, phases=2, shape=out_shape,
                    row_sizes=row_sizes))

        if (direct_write and row_sizes is not None and not is_process
                and spec.numeric_into is not None):
            return direct_write_numeric(spec, A, B, mask, semiring, chunks,
                                        row_sizes, out_shape, executor)

        if is_process:
            blocks = executor.map(_chunk_task,
                                  [(token, c, "numeric") for c in chunks])
        else:
            blocks = executor.map(
                timed(lambda c: spec.numeric(A, B, mask, semiring, c),
                      "numeric"), chunks)
    finally:
        if token is not None:
            del _CONTEXTS[token]

    return stitch_blocks(blocks, out_shape[0], out_shape[1])
