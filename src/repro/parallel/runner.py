"""Row-parallel Masked SpGEMM driver.

Flow: estimate per-row work → cut contiguous flops-balanced chunks
(oversubscribed 4× so the greedy schedule can balance) → run the kernel's
``numeric_rows`` (and ``symbolic_rows`` for two-phase) per chunk on the
executor → stitch the RowBlocks back into one CSR matrix.

The kernels are chunk-fused (``esc`` and the fused MSA passes do a constant
number of flat numpy passes per *chunk*, not per row), so chunk granularity
is a real trade-off: more chunks balance better, fewer chunks amortize
better. A single-worker executor therefore gets exactly one maximal chunk —
there is no imbalance to smooth and splitting would only fragment the fused
passes. Two-phase requests carrying a cached plan (``plan=``) skip the
symbolic map entirely, so a warm request runs zero Python-per-row work end
to end.

Process-pool support: operands are parked in module globals under a token
before the pool forks, so children inherit them via copy-on-write and tasks
carry only ``(token, chunk_of_row_ids)``. Semirings are passed *by name*
(pickling lambdas is a trap); custom semiring objects therefore require a
thread/serial/simulated executor.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import AlgorithmError
from ..mask import Mask
from ..semiring import PLUS_TIMES, Semiring
from ..semiring.standard import _REGISTRY as _SEMIRING_REGISTRY
from ..sparse.csr import CSRMatrix
from ..validation import check_multiplicable
from ..core import registry
from ..core.types import stitch_blocks
from .executor import ProcessExecutor
from .partition import balanced_partition, estimate_row_weights

#: chunks per worker; >1 lets greedy scheduling smooth residual imbalance
OVERSUBSCRIBE = 4

# ---------------------------------------------------------------------- #
# process-pool plumbing: context parked in globals pre-fork
# ---------------------------------------------------------------------- #
_CONTEXTS: dict[int, tuple] = {}
_TOKENS = itertools.count()


def _chunk_task(args):
    """Top-level (picklable) task: run one chunk against the parked context."""
    token, rows, phase = args
    A, B, mask, algorithm, semiring_name = _CONTEXTS[token]
    spec = registry.get_spec(algorithm)
    semiring = _SEMIRING_REGISTRY[semiring_name]
    if phase == "symbolic":
        return spec.symbolic(A, B, mask, rows)
    return spec.numeric(A, B, mask, semiring, rows)


def parallel_masked_spgemm(
    A: CSRMatrix,
    B: CSRMatrix,
    mask: Mask,
    *,
    algorithm: str = "msa",
    semiring: Semiring = PLUS_TIMES,
    phases: int = 1,
    executor=None,
    nchunks: Optional[int] = None,
    plan=None,
) -> CSRMatrix:
    """Row-parallel ``C = M ⊙ (A·B)`` on the given executor.

    ``plan`` (a :class:`repro.core.plan.SymbolicPlan` with cached row sizes)
    makes the two-phase symbolic map a no-op: the sizes are already known, so
    only the numeric chunks are dispatched.
    """
    out_shape = check_multiplicable(A.shape, B.shape)
    mask.check_output_shape(out_shape)
    spec = registry.get_spec(algorithm)
    if executor is None:
        from .executor import SerialExecutor

        executor = SerialExecutor()

    weights = estimate_row_weights(A, B, mask, algorithm)
    if nchunks is None:
        # one maximal chunk per lone worker (see module docstring)
        nchunks = (1 if executor.nworkers <= 1
                   else max(1, executor.nworkers * OVERSUBSCRIBE))
    chunks = balanced_partition(weights, nchunks)
    if not chunks:
        return CSRMatrix.empty(out_shape)

    run_symbolic = phases == 2 and (plan is None or plan.row_sizes is None)
    if isinstance(executor, ProcessExecutor):
        if semiring.name not in _SEMIRING_REGISTRY:
            raise AlgorithmError(
                f"process executor requires a registered semiring (got "
                f"{semiring.name!r}); use a thread or serial executor for "
                f"custom semirings"
            )
        token = next(_TOKENS)
        _CONTEXTS[token] = (A, B, mask, algorithm, semiring.name)
        try:
            if run_symbolic:
                executor.map(_chunk_task,
                             [(token, c, "symbolic") for c in chunks])
            blocks = executor.map(_chunk_task,
                                  [(token, c, "numeric") for c in chunks])
        finally:
            del _CONTEXTS[token]
    else:
        if run_symbolic:
            executor.map(lambda c: spec.symbolic(A, B, mask, c), chunks)
        blocks = executor.map(lambda c: spec.numeric(A, B, mask, semiring, c),
                              chunks)

    return stitch_blocks(blocks, out_shape[0], out_shape[1])
