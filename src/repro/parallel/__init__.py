"""Row-parallel execution layer.

The paper parallelizes across output rows only ("plenty of coarse-grained
parallelism across rows", §3) with threads pinned to cores. This package
reproduces that schedule shape in Python:

* :mod:`repro.parallel.partition` — row partitioning, including the
  flops-balanced variant addressing the paper's load-imbalance challenge
  (§2.2 challenge iv);
* :mod:`repro.parallel.executor` — serial, thread, process (fork) and
  *simulated* executors. The simulated executor measures per-chunk serial
  time and reports the makespan a p-worker greedy schedule would achieve —
  an honest work/span model used for strong-scaling experiments on boxes
  whose GIL (or core count) hides real scaling;
* :mod:`repro.parallel.runner` — the chunk→kernel→assembly driver behind
  ``masked_spgemm(..., executor=...)``: direct-to-CSR writes whenever a
  two-phase plan supplies exact row sizes, RowBlock stitch otherwise.
  Chunk counts come from the cache-aware flops budget
  (:func:`repro.parallel.partition.chunk_budget`), not worker count.
"""

from .executor import (
    ProcessExecutor,
    SerialExecutor,
    SimulatedExecutor,
    ThreadExecutor,
)
from .partition import (
    balanced_partition,
    budget_chunk_count,
    chunk_budget,
    estimate_row_weights,
    uniform_partition,
)
from .runner import parallel_masked_spgemm, uses_direct_write

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SimulatedExecutor",
    "uniform_partition",
    "balanced_partition",
    "estimate_row_weights",
    "chunk_budget",
    "budget_chunk_count",
    "parallel_masked_spgemm",
    "uses_direct_write",
]
