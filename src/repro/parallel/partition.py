"""Row partitioning strategies.

SpGEMM's per-row work is wildly skewed on power-law graphs (the paper's
challenge (iv): load imbalance), so equal-row chunks starve most workers.
:func:`balanced_partition` splits rows into contiguous chunks of
approximately equal *estimated work* using a prefix-sum of per-row weights —
the standard static load-balancing device for row-parallel SpGEMM.
"""

from __future__ import annotations

import numpy as np

from ..core.expand import per_row_flops
from ..mask import Mask
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE


def uniform_partition(nrows: int, nchunks: int) -> list[np.ndarray]:
    """Split ``range(nrows)`` into ≤ nchunks contiguous equal-length chunks."""
    if nchunks <= 0:
        raise ValueError(f"nchunks must be positive, got {nchunks}")
    bounds = np.linspace(0, nrows, min(nchunks, max(nrows, 1)) + 1).astype(np.int64)
    return [np.arange(bounds[i], bounds[i + 1], dtype=INDEX_DTYPE)
            for i in range(len(bounds) - 1) if bounds[i + 1] > bounds[i]]


def balanced_partition(weights: np.ndarray, nchunks: int) -> list[np.ndarray]:
    """Contiguous chunks with approximately equal total weight.

    Rows with zero weight still get assigned (they ride along with their
    neighbours). Guaranteed to return ≥ 1 chunk covering all rows, and no
    empty chunks.
    """
    if nchunks <= 0:
        raise ValueError(f"nchunks must be positive, got {nchunks}")
    w = np.asarray(weights, dtype=np.float64)
    nrows = w.size
    if nrows == 0:
        return []
    csum = np.cumsum(w)
    total = csum[-1]
    if total <= 0:
        return uniform_partition(nrows, nchunks)
    targets = total * np.arange(1, nchunks) / nchunks
    cuts = np.searchsorted(csum, targets, side="left") + 1
    bounds = np.unique(np.concatenate([[0], cuts, [nrows]]))
    return [np.arange(bounds[i], bounds[i + 1], dtype=INDEX_DTYPE)
            for i in range(len(bounds) - 1)]


def estimate_row_weights(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                         algorithm: str = "msa") -> np.ndarray:
    """Per-row work estimates for the balanced partitioner.

    * push kernels (incl. the chunk-fused ``esc``, whose flat passes are
      linear-ish in the same quantity): ``flops_i + nnz(m_i)`` (expansion +
      mask handling);
    * pull (inner): ``nnz(m_i) + Σ_{j∈m_i} nnz(B_*j)`` (dot-product terms).
    """
    if algorithm == "inner":
        col_nnz = np.bincount(B.indices, minlength=B.ncols).astype(np.float64)
        csum = np.concatenate([[0.0], np.cumsum(col_nnz[mask.indices])])
        dots = csum[mask.indptr[1:]] - csum[mask.indptr[:-1]]
        return dots + np.diff(mask.indptr)
    flops = per_row_flops(A, B).astype(np.float64)
    return flops + np.diff(mask.indptr)
