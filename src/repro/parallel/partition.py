"""Row partitioning strategies.

SpGEMM's per-row work is wildly skewed on power-law graphs (the paper's
challenge (iv): load imbalance), so equal-row chunks starve most workers.
:func:`balanced_partition` splits rows into contiguous chunks of
approximately equal *estimated work* using a prefix-sum of per-row weights —
the standard static load-balancing device for row-parallel SpGEMM.

How *many* chunks to cut is a separate question. The chunk-fused kernels
turn each chunk into a handful of flat passes over an O(flops) product
stream, so the right granularity is the one whose working set stays
cache-resident (the paper's §5.3/§8.3 cache argument, and Wheatman et al.'s
"size work units to cache, not cores") — not a multiple of the worker
count. :func:`chunk_budget` converts a cache size into a per-chunk flops
budget using the fused pipeline's measured bytes-per-flop, and
:func:`budget_chunk_count` turns total estimated work into a chunk count
honouring both that budget and a one-chunk-per-worker floor.
"""

from __future__ import annotations

import numpy as np

from ..core.expand import per_row_flops
from ..mask import Mask
from ..sparse.csr import CSRMatrix
from ..validation import INDEX_DTYPE

#: bytes of distinct working set the fused numeric pipeline touches per
#: partial product: expanded cols+vals (16), composite keys (8), the stable
#: argsort permutation plus its sorted gathers (~32), compress/scatter
#: temporaries (~16). Cross-checked against the cache-simulator model in
#: :func:`repro.perfmodel.trace.fused_stream_trace` and the chunk-size
#: ablation in ``benchmarks/bench_chunk_fusion.py``.
FUSED_BYTES_PER_FLOP = 72

#: bytes per partial product for the compiled tier (:mod:`repro.native`):
#: the Gustavson loop streams one B row entry (col 8 + val 8) and touches
#: one accumulator slot (state 1 + value 8, amortized over re-hits) per
#: product, with no expanded intermediates, keys, or sort permutation —
#: roughly a third of the fused pipeline's traffic, so native chunks can
#: carry ~3× the flops in the same cache share. Validated against observed
#: per-chunk timings by ``tools/check_chunk_budget.py``.
NATIVE_BYTES_PER_FLOP = 24

#: default per-chunk cache target: a last-level-cache share per worker on a
#: laptop/CI-class box. 16 MiB / 72 B ≈ 230k partial products per chunk —
#: well under the fused kernels' FUSE_FLOPS_BUDGET memory bound, so chunk
#: granularity (not the kernel-internal split) decides the working set.
DEFAULT_CHUNK_CACHE_BYTES = 16 << 20


def chunk_budget(cache_bytes: int | None = None, *,
                 bytes_per_flop: int = FUSED_BYTES_PER_FLOP) -> int:
    """Per-chunk flops budget keeping the fused working set cache-resident.

    ``cache_bytes`` defaults to :data:`DEFAULT_CHUNK_CACHE_BYTES`; pass the
    target cache level's capacity (an L2, an LLC share) to retune. The
    returned budget is in units of partial products — the same quantity
    :func:`estimate_row_weights` estimates per row, so the two compose
    directly in :func:`budget_chunk_count`.
    """
    if cache_bytes is None:
        cache_bytes = DEFAULT_CHUNK_CACHE_BYTES
    return max(1, int(cache_bytes) // int(bytes_per_flop))


def budget_chunk_count(weights: np.ndarray, nworkers: int,
                       budget: int | None = None) -> int:
    """Number of chunks for ``weights`` under a flops budget per chunk.

    ``max(nworkers, ceil(total/budget))``: enough chunks that each one's
    fused working set stays within the cache budget, but never fewer than
    one per worker. This replaces the old ``nworkers × 4`` oversubscription
    heuristic — on large inputs the cache term dominates and also provides
    the oversubscription the greedy schedule needs; on small inputs every
    worker still gets work.
    """
    if budget is None:
        budget = chunk_budget()
    total = float(np.sum(weights)) if np.size(weights) else 0.0
    by_cache = int(np.ceil(total / budget)) if total > 0 else 1
    return max(1, int(nworkers), by_cache)


def uniform_partition(nrows: int, nchunks: int) -> list[np.ndarray]:
    """Split ``range(nrows)`` into ≤ nchunks contiguous equal-length chunks."""
    if nchunks <= 0:
        raise ValueError(f"nchunks must be positive, got {nchunks}")
    bounds = np.linspace(0, nrows, min(nchunks, max(nrows, 1)) + 1).astype(np.int64)
    return [np.arange(bounds[i], bounds[i + 1], dtype=INDEX_DTYPE)
            for i in range(len(bounds) - 1) if bounds[i + 1] > bounds[i]]


def balanced_partition(weights: np.ndarray, nchunks: int) -> list[np.ndarray]:
    """Contiguous chunks with approximately equal total weight.

    Rows with zero weight still get assigned (they ride along with their
    neighbours). Guaranteed to return ≥ 1 chunk covering all rows, and no
    empty chunks.
    """
    if nchunks <= 0:
        raise ValueError(f"nchunks must be positive, got {nchunks}")
    w = np.asarray(weights, dtype=np.float64)
    nrows = w.size
    if nrows == 0:
        return []
    csum = np.cumsum(w)
    total = csum[-1]
    if total <= 0:
        return uniform_partition(nrows, nchunks)
    targets = total * np.arange(1, nchunks) / nchunks
    cuts = np.searchsorted(csum, targets, side="left") + 1
    bounds = np.unique(np.concatenate([[0], cuts, [nrows]]))
    return [np.arange(bounds[i], bounds[i + 1], dtype=INDEX_DTYPE)
            for i in range(len(bounds) - 1)]


def estimate_row_weights(A: CSRMatrix, B: CSRMatrix, mask: Mask,
                         algorithm: str = "msa") -> np.ndarray:
    """Per-row work estimates for the balanced partitioner.

    * push kernels (incl. the chunk-fused ``esc``, whose flat passes are
      linear-ish in the same quantity): ``flops_i + nnz(m_i)`` (expansion +
      mask handling);
    * pull (inner): ``nnz(m_i) + Σ_{j∈m_i} nnz(B_*j)`` (dot-product terms).
    """
    if algorithm == "inner":
        col_nnz = np.bincount(B.indices, minlength=B.ncols).astype(np.float64)
        csum = np.concatenate([[0.0], np.cumsum(col_nnz[mask.indices])])
        dots = csum[mask.indptr[1:]] - csum[mask.indptr[:-1]]
        return dots + np.diff(mask.indptr)
    flops = per_row_flops(A, B).astype(np.float64)
    return flops + np.diff(mask.indptr)
