"""Executors: serial, threads, processes, and the simulated work/span model.

Why four? The calibration note for this reproduction says it directly: "GIL
blocks shared-memory parallelism". So:

* :class:`SerialExecutor` — baseline; also what ``executor=None`` means.
* :class:`ThreadExecutor` — real threads. numpy kernels release the GIL for
  parts of their work, Python glue does not; speedups are real but damped.
* :class:`ProcessExecutor` — fork-based processes: genuine parallelism.
  Inputs reach children via copy-on-write fork memory; only row ids and
  results cross the pipe.
* :class:`SimulatedExecutor` — runs chunks serially, times each, and reports
  the **makespan** a greedy p-worker list schedule of those chunk times
  would achieve. This is a deterministic work/span model of the paper's
  OpenMP dynamic loop, used for strong-scaling *shape* experiments on small
  CI boxes. Its results (the actual matrices) are bit-identical to serial.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np


class SerialExecutor:
    """Run chunks one after another in the calling thread."""

    def __init__(self):
        self.nworkers = 1

    def map(self, fn: Callable, items: Sequence) -> list:
        return [fn(it) for it in items]

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class ThreadExecutor:
    """Thread-pool execution (GIL-limited for pure-Python sections)."""

    def __init__(self, nworkers: int | None = None):
        self.nworkers = int(nworkers or os.cpu_count() or 1)
        self._pool = ThreadPoolExecutor(max_workers=self.nworkers)

    def map(self, fn: Callable, items: Sequence) -> list:
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class ProcessExecutor:
    """Fork-based process pool.

    The pool is created lazily *inside* :meth:`map`, after the caller has
    parked the kernel context in module globals (see
    :mod:`repro.parallel.runner`): fork then snapshots those globals into
    every child, so operand matrices never cross a pipe.
    """

    def __init__(self, nworkers: int | None = None):
        self.nworkers = int(nworkers or os.cpu_count() or 1)

    def map(self, fn: Callable, items: Sequence) -> list:
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        with ctx.Pool(processes=self.nworkers) as pool:
            return pool.map(fn, items)

    def close(self) -> None:  # pragma: no cover - pools are per-call
        pass


class SimulatedExecutor:
    """Serial execution + greedy list-schedule makespan model.

    After :meth:`map`, :attr:`last_serial_seconds` holds the summed chunk
    times and :attr:`last_makespan_seconds` the simulated parallel time on
    ``nworkers`` workers (each chunk, in submission order, goes to the
    least-loaded worker — OpenMP ``dynamic`` semantics). ``speedup()``
    reports their ratio.
    """

    def __init__(self, nworkers: int):
        self.nworkers = int(nworkers)
        if self.nworkers <= 0:
            raise ValueError("nworkers must be positive")
        self.last_serial_seconds = 0.0
        self.last_makespan_seconds = 0.0
        self.last_chunk_seconds: list[float] = []

    def map(self, fn: Callable, items: Sequence) -> list:
        results = []
        chunk_times = []
        for it in items:
            t0 = time.perf_counter()
            results.append(fn(it))
            chunk_times.append(time.perf_counter() - t0)
        self.last_chunk_seconds = chunk_times
        self.last_serial_seconds = float(sum(chunk_times))
        loads = np.zeros(self.nworkers)
        for t in chunk_times:  # greedy: next chunk to least-loaded worker
            loads[int(np.argmin(loads))] += t
        self.last_makespan_seconds = float(loads.max(initial=0.0))
        return results

    def speedup(self) -> float:
        if self.last_makespan_seconds <= 0:
            return 1.0
        return self.last_serial_seconds / self.last_makespan_seconds

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass
