"""Orphaned shared-memory hygiene.

Every shard segment this stack creates is named ``repro_{pid}_{seq}``
(:mod:`repro.shard.memory`), where ``pid`` is the creating process. A
crashed server or coordinator therefore leaves its segments behind in
``/dev/shm`` with a dead owner encoded right in the filename — no
registry file, no lock, just the pid. :func:`sweep_orphans` walks
``/dev/shm``, parses owner pids out of ``repro_*`` names, and unlinks the
segments whose owner is gone.

The sweep backs the ``repro gc-shm`` CLI subcommand and runs
automatically on ``repro serve`` startup, so a previous crashed run can
never starve the next one of shm space.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

__all__ = ["OrphanSegment", "list_repro_segments", "sweep_orphans",
           "SEGMENT_PREFIX"]

SEGMENT_PREFIX = "repro_"
_NAME_RE = re.compile(r"^repro_(\d+)_\d+$")
_SHM_DIR = "/dev/shm"


@dataclass(frozen=True)
class OrphanSegment:
    """One ``repro_*`` segment found in /dev/shm."""

    name: str          # shm name (no leading slash)
    owner_pid: int     # 0 when the name is repro_* but unparsable
    size: int          # bytes, 0 if stat failed
    owner_alive: bool


def _pid_alive(pid: int) -> bool:
    """Is a process with this pid running? (signal-0 probe; EPERM means a
    live process we may not signal, which still counts as alive.)"""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def list_repro_segments(shm_dir: str = _SHM_DIR) -> list[OrphanSegment]:
    """All ``repro_*`` segments currently in ``shm_dir``, with owner
    liveness resolved."""
    try:
        entries = sorted(os.listdir(shm_dir))
    except OSError:
        return []
    out = []
    for name in entries:
        if not name.startswith(SEGMENT_PREFIX):
            continue
        m = _NAME_RE.match(name)
        pid = int(m.group(1)) if m else 0
        try:
            size = os.stat(os.path.join(shm_dir, name)).st_size
        except OSError:
            size = 0
        out.append(OrphanSegment(name=name, owner_pid=pid, size=size,
                                 owner_alive=_pid_alive(pid)))
    return out


def sweep_orphans(shm_dir: str = _SHM_DIR, *,
                  dry_run: bool = False) -> list[OrphanSegment]:
    """Unlink every ``repro_*`` segment whose owner pid is dead.

    Returns the orphans found (whether or not they were unlinked —
    ``dry_run=True`` lists without touching). Segments with live owners,
    and names that carry no parsable pid, are left alone: better to leak
    one segment than to unlink under a running server.
    """
    orphans = [seg for seg in list_repro_segments(shm_dir)
               if seg.owner_pid > 0 and not seg.owner_alive]
    if not dry_run:
        for seg in orphans:
            try:
                os.unlink(os.path.join(shm_dir, seg.name))
            except OSError:
                pass  # raced with another sweeper; the goal is met either way
    return orphans
