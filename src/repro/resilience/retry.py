"""Retry policy: bounded attempts with exponential backoff and jitter.

The engine's numeric pass runs on a ladder of execution tiers (shard pool →
in-process fused → per-row loop kernels), every rung bit-identical by the
repo's standing gates. :class:`RetryPolicy` decides how hard to try a rung
before stepping down: how many attempts, and how long to wait between them.

Backoff is exponential with deterministic jitter: attempt *k* sleeps
``min(max_delay, base * multiplier**k) * (1 + jitter * u_k)`` where the
``u_k ∈ [0, 1)`` stream comes from a seeded :class:`random.Random` — two
policies built with the same seed replay the same schedule, which keeps the
chaos suite reproducible while still decorrelating real concurrent
retriers (each engine seeds from its own policy instance).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

__all__ = ["RetryPolicy"]


@dataclass
class RetryPolicy:
    """How many times to attempt a tier, and how long to wait between tries.

    Parameters
    ----------
    max_attempts : attempts at the *retryable* tier (the shard pool) before
        degrading to the next tier down. 1 disables same-tier retries
        (first failure degrades immediately).
    base_delay : seconds before the first retry.
    multiplier : exponential growth factor per further retry.
    max_delay : backoff ceiling in seconds.
    jitter : fractional jitter amplitude (0 = deterministic schedule,
        0.5 = up to +50% per sleep).
    seed : seeds the jitter stream — same seed, same schedule.
    """

    max_attempts: int = 2
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.5
    jitter: float = 0.25
    seed: int | None = 0
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")
        self._rng = random.Random(self.seed)

    def backoff(self, attempt: int) -> float:
        """Sleep length before retry number ``attempt`` (0-based: the wait
        after the first failure is ``backoff(0)``)."""
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** max(attempt, 0))
        return delay * (1.0 + self.jitter * self._rng.random())

    def sleep(self, attempt: int) -> float:
        """Block for the attempt's backoff; returns the seconds slept.

        Runs on the engine's worker thread (never the event loop — the
        async server executes engine work via ``asyncio.to_thread``), so a
        plain sleep is the right primitive.
        """
        delay = self.backoff(attempt)
        if delay > 0:
            time.sleep(delay)
        return delay
