"""Deterministic fault injection for the serving and shard stack.

Resilience code that is only exercised by real hardware failures is
untested code. :class:`FaultPlan` is the seam that lets the chaos suite —
and the CI ``serve --smoke --chaos`` leg — *actually kill things*, on a
schedule that is exact and replayable:

* A plan is a list of :class:`FaultSpec`\\ s, each naming an injection
  *site* (``shard.numeric``, ``shard.symbolic``, ``shard.attach``,
  ``engine.kernel``, ...), an *action* (``kill``, ``slow``, ``error``), a
  bounded fire *count*, and optionally how many matching checks to *skip*
  first.
* Sites call :meth:`FaultPlan.check` when they reach the instrumented
  point. The plan decrements its counters under a lock and returns the
  spec exactly ``count`` times — the Nth eligible request fails, the
  N+1th succeeds, every run.
* For cross-process sites the *coordinator* does the counting in one
  process and attaches the fired spec to exactly one task's arguments;
  the shard worker merely applies it (``os._exit`` for ``kill``, a sleep
  for ``slow``, a raised :class:`InjectedFault` for ``error``). Counters
  never live in forked children, so a plan saying "kill one worker" kills
  exactly one.

Plans come from ``Engine(faults=...)`` in tests or the ``REPRO_FAULTS``
environment variable in the CI chaos leg, using a compact
``site:action[:count[:param]]`` comma-separated syntax::

    REPRO_FAULTS="shard.numeric:kill:1,engine.kernel:error:2"
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from ..errors import ReproError

__all__ = ["FaultSpec", "FaultPlan", "InjectedFault", "FAULT_SITES",
           "apply_fault", "wire_format"]

ENV_VAR = "REPRO_FAULTS"

#: the instrumented sites and what each action means there
FAULT_SITES = {
    "shard.numeric": "start of a shard numeric task (worker process)",
    "shard.symbolic": "start of a shard symbolic task (worker process)",
    "shard.attach": "segment attach inside a shard task (worker process)",
    "engine.kernel": "in-process numeric kernel call (engine tier)",
}

_ACTIONS = ("kill", "slow", "error")


class InjectedFault(ReproError):
    """An error raised *on purpose* by a :class:`FaultSpec` with action
    ``error``. Picklable across the pool boundary (single str arg)."""


@dataclass
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    site : instrumented point name (see :data:`FAULT_SITES`).
    action : ``kill`` (``os._exit(1)`` the process), ``slow`` (sleep
        ``param`` seconds, default 0.2), ``error`` (raise
        :class:`InjectedFault`).
    count : how many matching checks fire this spec before it is spent.
    skip : how many matching checks pass through untouched first.
    param : action parameter (sleep seconds for ``slow``).
    """

    site: str
    action: str
    count: int = 1
    skip: int = 0
    param: float = 0.2

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} "
                f"(expected one of {_ACTIONS})")
        if self.count < 1:
            raise ValueError(f"fault count must be >= 1, got {self.count}")
        if self.skip < 0:
            raise ValueError(f"fault skip must be >= 0, got {self.skip}")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``site:action[:count[:param]]`` clause."""
        parts = text.strip().split(":")
        if len(parts) < 2:
            raise ValueError(
                f"fault spec {text!r} needs at least site:action")
        site, action = parts[0], parts[1]
        count = int(parts[2]) if len(parts) > 2 and parts[2] else 1
        param = float(parts[3]) if len(parts) > 3 and parts[3] else 0.2
        return cls(site=site, action=action, count=count, param=param)


class FaultPlan:
    """A thread-safe schedule of faults, consulted by instrumented sites.

    ``check(site)`` returns the :class:`FaultSpec` to apply (decrementing
    its budget) or ``None``. ``fired`` records how many times each
    ``(site, action)`` actually triggered, for assertions in the chaos
    suite and the CI gate.
    """

    def __init__(self, specs=()):
        self._lock = threading.Lock()
        self._specs = [s if isinstance(s, FaultSpec) else FaultSpec.parse(s)
                       for s in specs]
        self.fired: dict[tuple[str, str], int] = {}

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a comma-separated ``site:action[:count[:param]]`` list."""
        clauses = [c for c in text.split(",") if c.strip()]
        return cls(FaultSpec.parse(c) for c in clauses)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """Build a plan from ``$REPRO_FAULTS`` (None when unset/empty)."""
        text = (environ if environ is not None else os.environ).get(ENV_VAR)
        if not text or not text.strip():
            return None
        return cls.parse(text)

    def __bool__(self) -> bool:
        with self._lock:
            return any(s.count > 0 for s in self._specs)

    def check(self, site: str) -> FaultSpec | None:
        """Does a fault fire at ``site`` now? Decrements skip/count."""
        with self._lock:
            for spec in self._specs:
                if spec.site != site:
                    continue
                if spec.skip > 0:
                    spec.skip -= 1
                    continue
                if spec.count <= 0:
                    continue
                spec.count -= 1
                key = (spec.site, spec.action)
                self.fired[key] = self.fired.get(key, 0) + 1
                return spec
        return None

    def fired_total(self) -> int:
        with self._lock:
            return sum(self.fired.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultPlan {self._specs!r} fired={self.fired!r}>"


def apply_fault(spec) -> None:
    """Execute a fired spec at the instrumented point.

    Accepts ``None`` (no-op) so call sites can write
    ``apply_fault(plan.check(site))``. Also accepts the plain
    ``(site, action, param)`` tuple form the coordinator ships across the
    pool boundary, so workers need no dataclass unpickling.
    """
    if spec is None:
        return
    if isinstance(spec, tuple):
        site, action, param = spec
    else:
        site, action, param = spec.site, spec.action, spec.param
    if action == "kill":
        # A real crash, not an exception: skip interpreter teardown so the
        # parent sees a dead process, exactly like a SIGKILL'd worker.
        os._exit(1)
    elif action == "slow":
        time.sleep(param)
    elif action == "error":
        raise InjectedFault(f"injected fault at {site}")
    else:  # pragma: no cover - parse() rejects unknown actions
        raise ValueError(f"unknown fault action {action!r}")


def wire_format(spec: FaultSpec | None):
    """The picklable tuple form shipped to shard workers (None passthrough)."""
    if spec is None:
        return None
    return (spec.site, spec.action, spec.param)
