"""Circuit breaker guarding the shard pool.

A dead or sick shard pool turns every eligible request into a
failure-then-degrade round trip: scatter, detect, heal, fall back. The
breaker caps that tax at N consecutive failures — once *tripped* (open),
requests route straight to the in-process tier with zero shard-side work,
and after ``reset_seconds`` one request is let through as a *probe*
(half-open): success closes the breaker and sharded serving resumes,
failure re-opens it for another cooldown.

State machine (the classic three states)::

    closed ──(N consecutive failures)──▶ open
    open ──(reset_seconds elapsed, next allow())──▶ half_open
    half_open ──(probe succeeds)──▶ closed
    half_open ──(probe fails)──▶ open

Thread-safe: engine worker threads call ``allow``/``record_*``
concurrently; exactly one of them wins the half-open probe slot. Wired to
the ``repro_breaker_state`` gauge (0 = closed, 1 = open, 2 = half-open)
and ``repro_breaker_transitions_total{to}`` when the engine binds its
registry via :meth:`CircuitBreaker.bind_metrics`.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker", "BREAKER_STATE_VALUES"]

#: gauge encoding of the state (documented in the metric's help string)
BREAKER_STATE_VALUES = {"closed": 0, "open": 1, "half_open": 2}


class CircuitBreaker:
    """Trip after ``failure_threshold`` consecutive failures; probe after
    ``reset_seconds``.

    Parameters
    ----------
    failure_threshold : consecutive failures that open the breaker.
    reset_seconds : cooldown before an open breaker admits a half-open
        probe.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_seconds: float = 5.0):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_seconds < 0:
            raise ValueError(
                f"reset_seconds must be >= 0, got {reset_seconds}")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._gauge = None
        self._transitions = None

    # ------------------------------------------------------------------ #
    # metrics binding
    # ------------------------------------------------------------------ #
    def bind_metrics(self, registry) -> None:
        """Attach the ``repro_breaker_state`` gauge and transition counter
        to a :class:`~repro.obs.MetricsRegistry`."""
        self._gauge = registry.gauge(
            "repro_breaker_state",
            "shard-tier circuit breaker state "
            "(0=closed, 1=open, 2=half_open)")
        self._transitions = registry.counter(
            "repro_breaker_transitions_total",
            "circuit breaker state transitions", labels=("to",))
        self._gauge.set(BREAKER_STATE_VALUES[self._state])

    def _transition(self, to: str) -> None:
        """State change under the lock; publishes to the bound metrics."""
        if to == self._state:
            return
        self._state = to
        if self._gauge is not None:
            self._gauge.set(BREAKER_STATE_VALUES[to])
        if self._transitions is not None:
            self._transitions.inc(to=to)

    # ------------------------------------------------------------------ #
    # the protocol: allow → attempt → record
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May the caller attempt the guarded tier right now?

        Closed → yes. Open within the cooldown → no (route around). Open
        past the cooldown → this call *claims* the half-open probe slot and
        returns True; concurrent callers see half-open and are refused
        until the probe's ``record_success``/``record_failure`` lands.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if time.monotonic() - self._opened_at >= self.reset_seconds:
                    self._transition("half_open")
                    return True
                return False
            return False  # half_open: exactly one probe in flight

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._transition("closed")

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if (self._state == "half_open"
                    or self._consecutive_failures >= self.failure_threshold):
                self._opened_at = time.monotonic()
                self._transition("open")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<CircuitBreaker {self._state} "
                f"({self._consecutive_failures}/{self.failure_threshold} "
                f"failures)>")
