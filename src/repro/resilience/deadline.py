"""Request deadlines: a monotonic budget carried from admission to kernels.

A production request is only worth finishing while its caller is still
waiting. :class:`Deadline` is the one representation of that budget used
across the stack: the async server starts it at admission
(``Request.deadline_ms``), the engine checks it between phases, and the
shard coordinator bounds its scatter waits with it — so a request that has
already lost its caller is *shed* (cheap, typed failure) instead of
occupying a worker, and a hung shard pool can never hold a submitter past
its budget.

Design points:

* **monotonic, absolute.** The deadline is an absolute point on
  ``time.monotonic()``; ``remaining()`` can be re-derived at every
  enforcement site without accumulating drift, and forked shard workers
  share the clock.
* **typed failure.** Every enforcement site raises
  :class:`DeadlineExceeded` (a :class:`~repro.errors.ReproError`), tagged
  with the *stage* that shed the work — admission, queue, scatter — so
  callers and metrics can tell "the server refused" from "the kernel was
  too slow".
* **None is infinite.** Requests without ``deadline_ms`` never construct a
  Deadline; every enforcement site accepts ``None`` and does nothing, so
  the hot path for undeadlined traffic stays a single identity check.
"""

from __future__ import annotations

import time

from ..errors import ReproError

__all__ = ["Deadline", "DeadlineExceeded"]


class DeadlineExceeded(ReproError):
    """The request's deadline expired before (or while) the work ran.

    ``stage`` names the enforcement site that shed the request —
    ``"admission"``, ``"queue"``, ``"follower"``, ``"engine"``,
    ``"scatter"`` — the same vocabulary the
    ``repro_deadline_total{stage}`` metric uses.
    """

    def __init__(self, message: str, *, stage: str = ""):
        super().__init__(message)
        self.stage = stage


class Deadline:
    """An absolute point on the monotonic clock a request must finish by."""

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = float(expires_at)

    @classmethod
    def after_ms(cls, deadline_ms: float | None) -> "Deadline | None":
        """Start a deadline ``deadline_ms`` from now (None → no deadline)."""
        if deadline_ms is None:
            return None
        return cls(time.monotonic() + float(deadline_ms) / 1e3)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, stage: str, detail: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        rem = self.remaining()
        if rem <= 0.0:
            extra = f" ({detail})" if detail else ""
            raise DeadlineExceeded(
                f"deadline exceeded at {stage}{extra}: "
                f"{-rem * 1e3:.1f} ms past budget", stage=stage)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Deadline {self.remaining() * 1e3:+.1f} ms>"


def resolve_deadline(request) -> Deadline | None:
    """The started deadline for a request: the one the async server stamped
    at admission when there is one (so queue time counts against the
    budget), else a fresh one from ``deadline_ms`` (direct engine callers),
    else None."""
    started = getattr(request, "_deadline", None)
    if started is not None:
        return started
    ms = getattr(request, "deadline_ms", None)
    return Deadline.after_ms(ms)
