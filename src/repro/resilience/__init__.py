"""repro.resilience — deadlines, retry/degrade, breakers, fault injection.

The serving stack's failure-handling layer, PR 7. Four pieces, composed by
the engine/server/coordinator:

* :mod:`~repro.resilience.deadline` — per-request monotonic budgets and
  the typed :class:`DeadlineExceeded` they shed work with.
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`, bounded attempts
  with seeded exponential backoff + jitter.
* :mod:`~repro.resilience.breaker` — :class:`CircuitBreaker` guarding the
  shard tier (closed/open/half-open).
* :mod:`~repro.resilience.faults` — :class:`FaultPlan`, the deterministic
  chaos seam (``REPRO_FAULTS`` / ``Engine(faults=...)``).
* :mod:`~repro.resilience.shm` — ``/dev/shm`` orphan sweeping behind
  ``repro gc-shm``.

See ``docs/RESILIENCE.md`` for the failure matrix tying fault sites to
detection, recovery tier, and metrics.
"""

from .breaker import BREAKER_STATE_VALUES, CircuitBreaker
from .deadline import Deadline, DeadlineExceeded, resolve_deadline
from .faults import (FAULT_SITES, FaultPlan, FaultSpec, InjectedFault,
                     apply_fault, wire_format)
from .retry import RetryPolicy
from .shm import OrphanSegment, list_repro_segments, sweep_orphans

__all__ = [
    "BREAKER_STATE_VALUES",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "resolve_deadline",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "apply_fault",
    "wire_format",
    "RetryPolicy",
    "OrphanSegment",
    "list_repro_segments",
    "sweep_orphans",
]
