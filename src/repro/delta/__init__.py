"""Edge-delta batches for streaming-graph serving (the ``repro.delta``
subsystem).

Static operands are the wrong model for the paper's flagship workloads:
k-truss repeatedly *shrinks* the support matrix and MCL repeatedly rewrites
values, and a long-lived service sees graphs that mutate between requests.
This package defines the mutation unit — :class:`DeltaBatch`, a batch of
edge inserts / deletes / value updates against one registered matrix — and
its exact application semantics. The service layer
(:meth:`repro.service.Engine.apply_delta`) builds on it to keep warm-path
economics across mutations: value-only batches preserve the pattern
fingerprint (100% plan hits), pattern batches re-plan only the dirty rows.
"""

from .batch import DeltaBatch, DeltaError, DeltaOutcome, DeltaResult

__all__ = ["DeltaBatch", "DeltaError", "DeltaOutcome", "DeltaResult"]
