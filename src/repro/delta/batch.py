"""The delta batch type and its application semantics.

A :class:`DeltaBatch` is a set of edge mutations applied atomically to one
CSR matrix:

* **delete** — ``(row, col)`` coordinates to remove. Deleting an unstored
  coordinate is a no-op (idempotent deletes are what streaming feeds
  produce: the same edge retires from several event sources).
* **insert** — ``(row, col, value)`` triples to add. Inserting at a stored
  coordinate overwrites its value without a pattern change.
* **update** — ``(row, col, value)`` triples rewriting stored values.
  Strict: updating an unstored coordinate raises (an update is a claim the
  edge exists; silently inserting would mask feed corruption).

Within one batch, deletes apply first, then inserts, then updates; within
each list, the *last* occurrence of a duplicated coordinate wins (event
order). The important derived quantity is the **pattern-dirty row set**:
rows whose sparsity structure changed. Delete-then-reinsert of a stored
edge in one batch therefore leaves its row *clean* — the pattern round-trips
— which is exactly the invariance the plan-splice machinery relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..errors import ReproError
from ..sparse.csr import CSRMatrix
from ..sparse.ops import apply_coordinate_delta, coord_keys
from ..validation import INDEX_DTYPE, VALUE_DTYPE


class DeltaError(ReproError):
    """Malformed delta batch (out-of-range coordinates, bad shapes, strict
    update of an unstored edge, …)."""


def _as_coords(edges: Sequence, *, with_values: bool,
               what: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalize ``[(r, c[, v]), …]`` to aligned rows/cols/values arrays."""
    width = 3 if with_values else 2
    try:
        # fast path: an (n, width) ndarray (e.g. np.column_stack of edge
        # arrays from a streaming feed) skips the Python-tuple round-trip
        arr = np.asarray(edges if isinstance(edges, np.ndarray) else
                         list(edges), dtype=np.float64)
    except (ValueError, TypeError) as exc:
        raise DeltaError(f"malformed {what} edge list: {exc}") from None
    if arr.size == 0:
        return (np.empty(0, dtype=INDEX_DTYPE), np.empty(0, dtype=INDEX_DTYPE),
                np.empty(0, dtype=VALUE_DTYPE))
    if arr.ndim != 2 or arr.shape[1] != width:
        raise DeltaError(
            f"{what} edges must be (row, col{', value' if with_values else ''})"
            f" tuples, got array of shape {arr.shape}")
    rows = arr[:, 0].astype(INDEX_DTYPE)
    cols = arr[:, 1].astype(INDEX_DTYPE)
    if not (np.all(arr[:, 0] == rows) and np.all(arr[:, 1] == cols)):
        raise DeltaError(f"{what} coordinates must be integers")
    vals = (arr[:, 2].astype(VALUE_DTYPE) if with_values
            else np.empty(0, dtype=VALUE_DTYPE))
    return rows, cols, vals


def _dedup_last(keys: np.ndarray,
                vals: np.ndarray | None) -> tuple[np.ndarray, np.ndarray | None]:
    """Sorted unique keys, keeping the *last* occurrence's value per key."""
    if keys.size == 0:
        return keys, vals
    # stable sort keeps event order within equal keys; the last index of
    # each run is the winning occurrence
    order = np.argsort(keys, kind="stable")
    skeys = keys[order]
    last = np.append(skeys[1:] != skeys[:-1], True)
    if vals is None:
        return skeys[last], None
    return skeys[last], vals[order][last]


@dataclass
class DeltaBatch:
    """One atomic batch of edge mutations (see module docstring).

    Construct from edge lists (``insert=[(r, c, v), …]``,
    ``delete=[(r, c), …]``, ``update=[(r, c, v), …]``) or from the JSON wire
    form via :meth:`from_dict`.
    """

    insert: Sequence = field(default_factory=list)
    delete: Sequence = field(default_factory=list)
    update: Sequence = field(default_factory=list)

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "DeltaBatch":
        unknown = set(spec) - {"insert", "delete", "update"}
        if unknown:
            raise DeltaError(f"unknown delta fields: {sorted(unknown)}")
        return cls(insert=spec.get("insert", []), delete=spec.get("delete", []),
                   update=spec.get("update", []))

    def __len__(self) -> int:
        return len(self.insert) + len(self.delete) + len(self.update)

    # ------------------------------------------------------------------ #
    def apply(self, m: CSRMatrix) -> "DeltaResult":
        """Apply this batch to ``m`` and classify the outcome.

        Returns a :class:`DeltaResult`; ``m`` itself is never mutated (the
        result's matrix shares the pattern arrays for value-only batches and
        is the *same object* for pure no-ops).
        """
        ins_r, ins_c, ins_v = _as_coords(self.insert, with_values=True,
                                         what="insert")
        del_r, del_c, _ = _as_coords(self.delete, with_values=False,
                                     what="delete")
        upd_r, upd_c, upd_v = _as_coords(self.update, with_values=True,
                                         what="update")
        nrows, ncols = m.shape
        for what, rows, cols in (("insert", ins_r, ins_c),
                                 ("delete", del_r, del_c),
                                 ("update", upd_r, upd_c)):
            if rows.size and (rows.min() < 0 or rows.max() >= nrows
                              or cols.min() < 0 or cols.max() >= ncols):
                raise DeltaError(
                    f"{what} coordinates out of range for shape {m.shape}")
        ins_k, ins_v = _dedup_last(coord_keys(ins_r, ins_c, ncols), ins_v)
        del_k, _ = _dedup_last(coord_keys(del_r, del_c, ncols), None)
        upd_k, upd_v = _dedup_last(coord_keys(upd_r, upd_c, ncols), upd_v)
        try:
            matrix, dirty_rows, changed_keys, value_touched = \
                apply_coordinate_delta(m, del_k, ins_k, ins_v, upd_k, upd_v)
        except ValueError as exc:
            raise DeltaError(str(exc)) from None
        pattern_changed = dirty_rows.size > 0
        if pattern_changed:
            kind = "mixed" if value_touched else "pattern"
        else:
            kind = "value" if value_touched else "noop"
        return DeltaResult(matrix=matrix, dirty_rows=dirty_rows,
                           changed_keys=changed_keys, kind=kind)


@dataclass
class DeltaResult:
    """Outcome of :meth:`DeltaBatch.apply` on one matrix."""

    matrix: CSRMatrix
    #: sorted unique rows whose *pattern* changed (empty for value/noop)
    dirty_rows: np.ndarray
    #: exact symmetric difference of the stored coordinate sets as sorted
    #: :func:`~repro.sparse.ops.coord_keys` — feeds B-side dirty sharpening
    #: (:func:`~repro.sparse.ops.rows_affected_through`)
    changed_keys: np.ndarray
    #: ``"noop"`` | ``"value"`` | ``"pattern"`` | ``"mixed"``
    kind: str

    @property
    def pattern_changed(self) -> bool:
        return self.dirty_rows.size > 0


@dataclass
class DeltaOutcome:
    """Service-level summary of one applied delta
    (:meth:`repro.service.Engine.apply_delta`)."""

    key: str
    kind: str
    #: rows of the mutated matrix whose pattern changed
    dirty_rows: int = 0
    #: dirty_rows / nrows of the mutated matrix (0.0 for value-only)
    dirty_fraction: float = 0.0
    #: cached plans re-keyed onto the new fingerprint via row splice
    plans_spliced: int = 0
    #: affected plans dropped instead (operands unresolvable from the store)
    plans_skipped: int = 0
    #: result-cache entries invalidated by fingerprint scan
    results_invalidated: int = 0
    #: cached products carried across the delta by dirty-row patching
    results_patched: int = 0
    pattern_fingerprint: str = ""
    value_fingerprint: str = ""
    seconds: float = 0.0
