"""Incremental k-truss serving via edge deltas vs full re-plan per iteration.

k-truss is the paper's streaming-adjacent workload: "Masked SpGEMM in an
iterative manner where the graph keeps changing due to pruning of some
edges" (§8.3). Before PR 8 every iteration paid the full pattern-only
pipeline again — auto-select, the whole symbolic pass, a cold numeric pass
— because each pruning produces a brand-new fingerprint. The delta
subsystem turns the pruning into what it actually is, an edge-delete batch:

* ``full-replan`` — :func:`repro.algorithms.ktruss.ktruss` (2P), each
  iteration planned from scratch on its new pattern;
* ``delta-serve`` — :func:`repro.algorithms.ktruss.ktruss_delta`: the
  support matrix registered once, each iteration's pruned edges applied as
  a delete-only :class:`~repro.delta.DeltaBatch`. The engine splices the
  cached plan (symbolic re-run over only the dirty rows — each pruned
  edge's mask-admitted common-neighbor set) and *patches* the cached
  product (numeric re-run over the same dirty rows), so iteration ``i+1``
  serves from the result tier.

Both runs are checked **bit-identical** (subgraph and iteration count)
before any timing is recorded. ``main()`` appends one ``delta`` run to
``BENCH_service.json``. Gate (ISSUE 8): delta-served k-truss ≥ **1.3×**
over full re-plan on **tc-rmat-s13-e8**, bit-identical.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from common import append_trajectory_run, emit, latest_trajectory_run
from repro.algorithms.ktruss import ktruss, ktruss_delta
from repro.bench import render_table
from repro.graphs import rmat
from repro.obs import parse_exposition
from repro.service import Engine

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: acceptance gate (ISSUE 8): delta-served vs full-re-plan k-truss
GATE_MIN_SPEEDUP = 1.3

CASE_SCALE, CASE_EDGE = 13, 8
K = 5
REPEATS = 3


def _case_name(scale=CASE_SCALE, edge=CASE_EDGE):
    return f"ktruss{K}-rmat-s{scale}-e{edge}-2p"


def _identical(a, b) -> bool:
    return bool(a.same_pattern(b) and np.array_equal(a.data, b.data))


def bench_case(scale=CASE_SCALE, edge=CASE_EDGE, *, k=K, repeats=REPEATS):
    """Both modes on one graph; returns (mode rows, gate row)."""
    g = rmat(scale, edge, rng=7000 + scale)
    case = _case_name(scale, edge)

    full_lat, delta_lat = [], []
    full = inc = None
    spliced = patched = 0
    identical = True
    for _ in range(repeats):
        t0 = time.perf_counter()
        full = ktruss(g, k, phases=2)
        full_lat.append(time.perf_counter() - t0)

        engine = Engine(result_cache_bytes=512 << 20)
        t0 = time.perf_counter()
        inc = ktruss_delta(g, k, engine=engine)
        delta_lat.append(time.perf_counter() - t0)

        identical &= _identical(inc.subgraph, full.subgraph)
        identical &= inc.iterations == full.iterations
        fam = parse_exposition(engine.metrics.render())
        spliced = int(fam.get("repro_delta_plans_total", {}).get(
            (("outcome", "spliced"),), 0))
        patched = int(sum(fam.get(
            "repro_delta_results_patched_total", {}).values()))

    def row(mode, lat, res):
        return {"case": case, "mode": mode, "k": k,
                "iterations": res.iterations, "repeats": len(lat),
                "mean_s": float(np.mean(lat)), "min_s": float(np.min(lat)),
                "total_flops": res.total_flops,
                "warm_iterations": sum(
                    1 for h in res.plan_hits_per_iteration if h)}

    rows = [row("full-replan", full_lat, full),
            row("delta-serve", delta_lat, inc)]
    speedup = float(np.mean(full_lat) / np.mean(delta_lat))
    gate = {"case": case, "mode": "delta-gate", "k": k,
            "repeats": repeats, "iterations": inc.iterations,
            "full_mean_s": float(np.mean(full_lat)),
            "delta_mean_s": float(np.mean(delta_lat)),
            "speedup_vs_full": speedup, "bit_identical": bool(identical),
            "plans_spliced": spliced, "results_patched": patched,
            "gate_min": GATE_MIN_SPEEDUP,
            "gate_pass": bool(speedup >= GATE_MIN_SPEEDUP and identical)}
    return rows, gate


def main() -> None:
    emit(f"[Delta] k-truss (k={K}) served via edge deltas vs full re-plan "
         f"per iteration")
    emit("full-replan = cold symbolic + numeric every iteration; "
         "delta-serve = delete-only DeltaBatch per pruning, spliced plans "
         "+ patched results\n")
    rows, gate = bench_case()
    table = [[r["case"], r["mode"], r["iterations"], r["warm_iterations"],
              r["repeats"], r["mean_s"], r["min_s"]] for r in rows]
    emit(render_table(["case", "mode", "iters", "warm iters", "reps",
                       "mean (s)", "min (s)"], table))
    emit(f"\n[Delta] gate: delta-serve vs full-replan on {gate['case']}")
    emit(render_table(
        ["case", "full (s)", "delta (s)", "speedup", "spliced", "patched",
         "identical", f"gate ≥{GATE_MIN_SPEEDUP}x"],
        [[gate["case"], gate["full_mean_s"], gate["delta_mean_s"],
          gate["speedup_vs_full"], gate["plans_spliced"],
          gate["results_patched"],
          "yes" if gate["bit_identical"] else "NO",
          "PASS" if gate["gate_pass"] else "FAIL"]]))

    prev = latest_trajectory_run(ARTIFACT, bench="delta")
    append_trajectory_run(ARTIFACT, "delta", rows + [gate])
    emit(f"\nappended run to {ARTIFACT.name} ({len(rows) + 1} results)")
    if prev is not None:
        drift = {r["case"]: r["speedup_vs_full"]
                 for r in prev["results"] if r.get("mode") == "delta-gate"}
        if gate["case"] in drift:
            emit(f"  delta-speedup drift [{gate['case']}]: "
                 f"{drift[gate['case']]:.2f}x → "
                 f"{gate['speedup_vs_full']:.2f}x")
    if gate["gate_pass"]:
        emit(f"acceptance gate: delta-served k-truss "
             f"{gate['speedup_vs_full']:.2f}x over full re-plan "
             f"(≥{GATE_MIN_SPEEDUP}x), bit-identical → PASS")
    else:
        emit("acceptance gate: FAIL")
        raise SystemExit(1)


# ----------------------------------------------------------------------- #
# pytest-benchmark face (`pytest benchmarks/ --benchmark-only -k delta`)
# ----------------------------------------------------------------------- #
def test_delta_ktruss_smoke(benchmark):
    """CI smoke: delta-served k-truss on a small grid stays bit-identical
    to the full re-plan run and serves warm past the first iteration."""
    g = rmat(8, 4, rng=7008)
    full = ktruss(g, K, phases=2)

    def run():
        return ktruss_delta(g, K, engine=Engine(result_cache_bytes=1 << 26))

    inc = benchmark.pedantic(run, rounds=3, warmup_rounds=1)
    assert _identical(inc.subgraph, full.subgraph)
    assert inc.iterations == full.iterations
    if inc.iterations > 1:
        assert all(h >= 1 for h in inc.plan_hits_per_iteration[1:])


if __name__ == "__main__":
    main()
