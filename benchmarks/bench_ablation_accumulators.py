"""Ablation — accumulator micro-costs on controlled ER rows (paper §5).

Isolates the accumulator choice on one fixed problem shape (everything else
— expansion, mask, semiring — identical), plus the hash load-factor
sensitivity the paper fixes at 0.25 and the reference-vs-vectorized tier
gap that motivates the two-tier design of this reproduction.
"""

from __future__ import annotations

import numpy as np

from common import emit
from repro import Mask, masked_spgemm
from repro.accumulators.hash_acc import HashAccumulator, table_capacity
from repro.bench import render_table, time_callable
from repro.core import display_name
from repro.graphs import erdos_renyi

ALGOS = ("msa", "hash", "mca", "heap", "heapdot", "inner")


def problem(n=1 << 10, d_in=8, d_m=8, seed=50):
    A = erdos_renyi(n, d_in, rng=seed)
    B = erdos_renyi(n, d_in, rng=seed + 1)
    M = erdos_renyi(n, d_m, rng=seed + 2)
    return A, B, Mask.from_matrix(M)


def main() -> None:
    emit("[Ablation: accumulators] one problem, six accumulators")
    A, B, mask = problem()
    rows = []
    for alg in ALGOS:
        t = time_callable(lambda a=alg: masked_spgemm(A, B, mask, algorithm=a),
                          repeats=2, warmup=1)
        rows.append([display_name(alg, 1), t * 1e3])
    emit(render_table(["scheme", "time (ms)"], rows))

    emit("\n[Ablation: hash load factor] paper fixes LF=0.25; sweep it")
    lf_rows = []
    rng = np.random.default_rng(3)
    keys = rng.choice(1 << 20, size=256, replace=False)
    for lf in (0.9, 0.5, 0.25, 0.125):
        def run(lf=lf):
            acc = HashAccumulator(keys.size, load_factor=lf)
            for k in keys:
                acc.set_allowed(int(k))
            for k in keys:
                acc.insert(int(k), 1.0)
            for k in keys:
                acc.remove(int(k))
        t = time_callable(run, repeats=2, warmup=1)
        lf_rows.append([lf, table_capacity(keys.size, lf), t * 1e3])
    emit(render_table(["load factor", "capacity", "time (ms)"], lf_rows))

    emit("\n[Ablation: tiers] vectorized vs reference (pure-Python) kernel")
    A2, B2, mask2 = problem(n=256, seed=60)
    tier_rows = []
    for alg in ("msa", "hash"):
        tv = time_callable(lambda a=alg: masked_spgemm(A2, B2, mask2,
                                                       algorithm=a),
                           repeats=2, warmup=1)
        tr = time_callable(lambda a=alg: masked_spgemm(A2, B2, mask2,
                                                       algorithm=a,
                                                       tier="reference"),
                           repeats=1, warmup=0)
        tier_rows.append([display_name(alg, 1), tv * 1e3, tr * 1e3, tr / tv])
    emit(render_table(["scheme", "vectorized (ms)", "reference (ms)",
                       "ratio"], tier_rows))


# ----------------------------------------------------------------------- #
def test_accumulator_msa(benchmark, density_problem):
    A, B, mask = density_problem
    benchmark.pedantic(lambda: masked_spgemm(A, B, mask, algorithm="msa"),
                       rounds=3, warmup_rounds=1)


def test_accumulator_hash(benchmark, density_problem):
    A, B, mask = density_problem
    benchmark.pedantic(lambda: masked_spgemm(A, B, mask, algorithm="hash"),
                       rounds=3, warmup_rounds=1)


def test_accumulator_mca(benchmark, density_problem):
    A, B, mask = density_problem
    benchmark.pedantic(lambda: masked_spgemm(A, B, mask, algorithm="mca"),
                       rounds=3, warmup_rounds=1)


def test_accumulator_heap(benchmark, density_problem):
    A, B, mask = density_problem
    benchmark.pedantic(lambda: masked_spgemm(A, B, mask, algorithm="heap"),
                       rounds=3, warmup_rounds=1)


if __name__ == "__main__":
    main()
