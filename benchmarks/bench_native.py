"""Compiled (native) kernel tier vs the fused NumPy kernels.

PR 9 adds a compiled implementation of the numeric pass behind the same
``numeric_rows``/``numeric_rows_into`` protocol: ``msa-native`` and
``hash-native`` resolve through a backend ladder (numba JIT where
installed, cffi + the system C compiler otherwise) and fall back to their
fused bases bit-identically when neither exists. The fused kernels pay
per-row Python dispatch plus a NumPy temporary per accumulator step; the
compiled row loop runs the whole numeric pass in one call, which is where
the paper's single-thread kernel gap lives.

This bench times exactly that swap on the gate workload (**tc-rmat-s13-e8**,
the repeated-mask TC product ``L ⊙ (L·L)``, PLUS_PAIR, 2P, warm plans) for
both accumulator families:

* ``msa`` vs ``msa-native`` — dense-scratch accumulator;
* ``hash`` vs ``hash-native`` — open-addressing accumulator.

Every repeat's output is checked bit-identical against the fused baseline
before its time counts, and the fused baseline itself is checked against
the pure-Python reference tier once (at a smaller scale — the reference
exists for auditability, not speed).

``main()`` appends one ``native`` run to ``BENCH_kernels.json`` and one
``thread_scaling`` run to ``BENCH_service.json``:

* **native** (gated): per-kernel fused/native mean latencies; acceptance
  gate (ISSUE 9) is native ≥ **2.0×** over fused for msa and hash both;
* **thread_scaling** (informational): the nogil thread backend
  (``backend="thread"``) vs inprocess and sharded serving at 1/2/4
  workers. The compiled row loop releases the GIL only under numba — under
  the cffi ABI backend calls are serialized by the interpreter — and this
  box may expose a single CPU, so the face records ``cpu_count`` and is
  deliberately not a scaling gate; it proves bit-identity and measures
  whatever parallelism the machine actually offers.

Skips cleanly (exit 0) when no compiled backend is available.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from common import append_trajectory_run, emit, latest_trajectory_run, tc_workload
from repro.bench import render_table
from repro.bench.metrics import latency_percentiles
from repro.core import build_plan, masked_spgemm
from repro.core.reference import reference_masked_spgemm
from repro.graphs import rmat
from repro.native import native_available, native_backend_name, warmup
from repro.parallel.executor import ThreadExecutor
from repro.parallel.runner import parallel_masked_spgemm
from repro.semiring import PLUS_PAIR
from repro.shard import ShardCoordinator, shared_memory_available

ROOT = Path(__file__).resolve().parent.parent
ARTIFACT_KERNELS = ROOT / "BENCH_kernels.json"
ARTIFACT_SERVICE = ROOT / "BENCH_service.json"

#: acceptance gate (ISSUE 9): compiled tier vs its fused base, per kernel
GATE_MIN_SPEEDUP = 2.0

CASE_SCALE, CASE_EDGE = 13, 8
PAIRS = [("msa", "msa-native"), ("hash", "hash-native")]
REPEATS = 5
WARMUP = 2
THREAD_WORKERS = (1, 2, 4)


def _case_name(scale=CASE_SCALE, edge=CASE_EDGE):
    return f"tc-rmat-s{scale}-e{edge}-2p"


def _workload(scale=CASE_SCALE, edge=CASE_EDGE):
    return tc_workload(rmat(scale, edge, rng=7000 + scale))


def _time(fn, baseline, *, repeats=REPEATS, warmup=WARMUP):
    """Warm timings; every repeat is checked bit-identical first."""
    lat = []
    out = None
    for i in range(warmup + repeats):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        if baseline is not None:
            assert out.same_pattern(baseline) and \
                np.array_equal(out.data, baseline.data), "NOT bit-identical"
        if i >= warmup:
            lat.append(dt)
    return lat, out


def _row(case, algorithm, latencies, **extra):
    pct = latency_percentiles(latencies, percentiles=(50, 95))
    row = {"case": case, "algorithm": algorithm,
           "repeats": len(latencies),
           "mean_ms": float(np.mean(latencies)) * 1e3,
           "p50_ms": pct[50] * 1e3, "p95_ms": pct[95] * 1e3}
    row.update(extra)
    return row


def bench_native(scale=CASE_SCALE, edge=CASE_EDGE, *, repeats=REPEATS):
    """Fused vs native for both accumulator families; returns
    (mode rows, gate rows)."""
    L, mask = _workload(scale, edge)
    case = _case_name(scale, edge)

    # audit the fused baseline against the reference tier once, where the
    # pure-Python tier is affordable
    sL, smask = _workload(scale=8, edge=4)
    small_fused = masked_spgemm(sL, sL, smask, algorithm="msa",
                                semiring=PLUS_PAIR, phases=2)
    small_ref = reference_masked_spgemm(sL, sL, smask, algorithm="msa",
                                        semiring=PLUS_PAIR)
    assert small_fused.same_pattern(small_ref) and \
        np.array_equal(small_fused.data, small_ref.data), \
        "fused baseline diverged from the reference tier"

    rows, gates = [], []
    for fused_key, native_key in PAIRS:
        fused_plan = build_plan(L, L, mask, algorithm=fused_key, phases=2)
        native_plan = build_plan(L, L, mask, algorithm=native_key, phases=2)
        fused_lat, baseline = _time(
            lambda: masked_spgemm(L, L, mask, algorithm=fused_key,
                                  semiring=PLUS_PAIR, phases=2,
                                  plan=fused_plan),
            None, repeats=repeats)
        native_lat, _ = _time(
            lambda: masked_spgemm(L, L, mask, algorithm=native_key,
                                  semiring=PLUS_PAIR, phases=2,
                                  plan=native_plan),
            baseline, repeats=repeats)
        rows.append(_row(case, fused_key, fused_lat))
        rows.append(_row(case, native_key, native_lat))
        speedup = float(np.mean(fused_lat) / np.mean(native_lat))
        gates.append({"case": case, "algorithm": native_key,
                      "mode": "native-gate",
                      "backend": native_backend_name(),
                      "fused_mean_ms": float(np.mean(fused_lat)) * 1e3,
                      "native_mean_ms": float(np.mean(native_lat)) * 1e3,
                      "speedup_vs_fused": speedup, "bit_identical": True,
                      "gate_min": GATE_MIN_SPEEDUP,
                      "gate_pass": bool(speedup >= GATE_MIN_SPEEDUP)})
    return rows, gates


def bench_threads(scale=CASE_SCALE, edge=CASE_EDGE, *, repeats=REPEATS):
    """Thread backend vs inprocess and sharded serving (informational)."""
    L, mask = _workload(scale, edge)
    case = _case_name(scale, edge)
    alg = "msa-native" if native_available() else "msa"
    plan = build_plan(L, L, mask, algorithm=alg, phases=2)

    inproc_lat, baseline = _time(
        lambda: parallel_masked_spgemm(L, L, mask, algorithm=alg,
                                       semiring=PLUS_PAIR, phases=2,
                                       plan=plan),
        None, repeats=repeats)
    rows = [_row(case, alg, inproc_lat, mode="inprocess", workers=0)]

    for n in THREAD_WORKERS:
        ex = ThreadExecutor(n)
        try:
            lat, _ = _time(
                lambda: parallel_masked_spgemm(L, L, mask, algorithm=alg,
                                               semiring=PLUS_PAIR, phases=2,
                                               plan=plan, executor=ex,
                                               backend="thread"),
                baseline, repeats=repeats)
        finally:
            ex.close()
        rows.append(_row(case, alg, lat, mode="thread", workers=n))

    if shared_memory_available():
        coord = ShardCoordinator(2)
        try:
            a_key, _ = coord._adhoc_handle(L)
            m_key, _ = coord._adhoc_handle(mask)
            lat, _ = _time(
                lambda: coord.multiply(a_key, a_key, m_key, mask, plan,
                                       PLUS_PAIR, plan_cache_key=(case,)),
                baseline, repeats=repeats)
        finally:
            coord.close()
        rows.append(_row(case, alg, lat, mode="shard", workers=2))

    face = {"case": case, "mode": "thread-face", "algorithm": alg,
            "backend": native_backend_name(), "cpu_count": os.cpu_count(),
            "bit_identical": True, "informational": True}
    return rows, face


def main() -> None:
    if not native_available():
        emit("no compiled backend (numba or cffi + C compiler) on this "
             "machine; native bench skipped")
        raise SystemExit(0)
    seconds = warmup()
    emit(f"[Native] compiled kernel tier ({native_backend_name()} backend, "
         f"warmed in {seconds:.2f}s) vs fused NumPy kernels")
    emit(f"workload: repeated-mask TC product on rmat(s={CASE_SCALE}, "
         f"e={CASE_EDGE}), PLUS_PAIR, 2P, warm plans\n")

    rows, gates = bench_native()
    table = [[r["case"], r["algorithm"], r["repeats"], r["mean_ms"],
              r["p50_ms"], r["p95_ms"]] for r in rows]
    emit(render_table(["case", "algorithm", "reps", "mean (ms)",
                       "p50 (ms)", "p95 (ms)"], table))
    emit(f"\n[Native] gate: native vs fused (≥{GATE_MIN_SPEEDUP}x each)")
    emit(render_table(
        ["algorithm", "fused (ms)", "native (ms)", "speedup",
         f"gate ≥{GATE_MIN_SPEEDUP}x"],
        [[g["algorithm"], g["fused_mean_ms"], g["native_mean_ms"],
          g["speedup_vs_fused"], "PASS" if g["gate_pass"] else "FAIL"]
         for g in gates]))

    trows, face = bench_threads()
    emit(f"\n[Native] thread backend vs inprocess/sharded (informational — "
         f"cpu_count={face['cpu_count']}, backend={face['backend']})")
    emit(render_table(
        ["case", "mode", "workers", "algorithm", "mean (ms)", "p50 (ms)"],
        [[r["case"], r["mode"], r["workers"], r["algorithm"], r["mean_ms"],
          r["p50_ms"]] for r in trows]))

    prev = latest_trajectory_run(ARTIFACT_KERNELS, bench="native")
    append_trajectory_run(ARTIFACT_KERNELS, "native", rows + gates)
    append_trajectory_run(ARTIFACT_SERVICE, "thread_scaling",
                          trows + [face])
    emit(f"\nappended run to {ARTIFACT_KERNELS.name} "
         f"({len(rows) + len(gates)} results) and {ARTIFACT_SERVICE.name} "
         f"({len(trows) + 1} results)")
    if prev is not None:
        drift = {r["algorithm"]: r["speedup_vs_fused"]
                 for r in prev["results"] if r.get("mode") == "native-gate"}
        for g in gates:
            if g["algorithm"] in drift:
                emit(f"  native-speedup drift [{g['algorithm']}]: "
                     f"{drift[g['algorithm']]:.2f}x → "
                     f"{g['speedup_vs_fused']:.2f}x")
    if all(g["gate_pass"] for g in gates):
        emit("acceptance gate: " + ", ".join(
            f"{g['algorithm']} {g['speedup_vs_fused']:.2f}x"
            for g in gates) + f" over fused (≥{GATE_MIN_SPEEDUP}x each), "
            "bit-identical throughout → PASS")
    else:
        emit("acceptance gate: FAIL")
        raise SystemExit(1)


# ----------------------------------------------------------------------- #
# pytest-benchmark face (`pytest benchmarks/ --benchmark-only -k native`)
# ----------------------------------------------------------------------- #
def test_native_warm_product(benchmark):
    """CI smoke: the compiled tier on a small grid stays bit-identical to
    fused. Skips cleanly on runners without a compiled backend."""
    import pytest

    if not native_available():
        pytest.skip("no compiled backend on this runner")
    L, mask = _workload(scale=8, edge=4)
    plan = build_plan(L, L, mask, algorithm="msa-native", phases=2)
    want = masked_spgemm(L, L, mask, algorithm="msa", semiring=PLUS_PAIR,
                         phases=2)
    got = benchmark(lambda: masked_spgemm(L, L, mask,
                                          algorithm="msa-native",
                                          semiring=PLUS_PAIR, phases=2,
                                          plan=plan))
    assert got.same_pattern(want) and np.array_equal(got.data, want.data)


if __name__ == "__main__":
    main()
