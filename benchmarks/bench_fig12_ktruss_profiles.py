"""Figure 12 — k-truss performance profiles of our schemes (k = 5).

Paper: all real graphs except wb-edu (runtime); "MSA performs the best on
Haswell while Inner performs fairly well on both [machines]" — the striking
result being that the *pull-based* algorithm becomes competitive because
k-truss prunes the graph, making the mask progressively sparser each
iteration. 1P again beats 2P; heap-based schemes are noncompetitive.

Reproduction: suite minus the largest graphs (mirroring the wb-edu
exclusion), k=5, timing the whole iterated Masked SpGEMM loop per scheme.
"""

from __future__ import annotations

from common import emit
from repro.algorithms import ktruss
from repro.bench import performance_profile, render_profile, run_grid
from repro.core import display_name
from repro.graphs import suite_graphs

SCHEMES = [(alg, ph)
           for alg in ("msa", "hash", "mca", "inner")
           for ph in (1, 2)]
K = 5


def ktruss_grid(schemes, *, limit=None, repeats=1):
    cases = []
    for name, g in suite_graphs(exclude_largest=True, limit=limit):
        def make(scheme, g=g):
            alg, ph = scheme
            return lambda: ktruss(g, K, algorithm=alg, phases=ph)

        cases.append((name, make))
    grid = run_grid(cases, schemes, repeats=repeats, warmup=1)
    from repro.bench import GridResult

    out = GridResult()
    for scheme, per in grid.times.items():
        for case, t in per.items():
            out.record(display_name(*scheme), case, t)
    return out


def main() -> None:
    emit(f"[Figure 12] k-truss (k={K}): performance profiles, our schemes")
    emit("paper: MSA best; Inner surprisingly competitive (mask sparsifies "
         "as pruning proceeds); 1P beats 2P; heap noncompetitive\n")
    grid = ktruss_grid(SCHEMES)
    prof = performance_profile(grid.times)
    emit(render_profile(f"k-truss k={K}, suite minus largest", prof))
    emit(f"\nranking (best first): {', '.join(prof.ranking())}")


# ----------------------------------------------------------------------- #
def test_ktruss_msa(benchmark, ktruss_graph):
    benchmark.pedantic(lambda: ktruss(ktruss_graph, K, algorithm="msa"),
                       rounds=3, warmup_rounds=1)


def test_ktruss_inner(benchmark, ktruss_graph):
    """The pull algorithm the paper highlights on this benchmark."""
    benchmark.pedantic(lambda: ktruss(ktruss_graph, K, algorithm="inner"),
                       rounds=3, warmup_rounds=1)


def test_ktruss_hash_2p(benchmark, ktruss_graph):
    benchmark.pedantic(lambda: ktruss(ktruss_graph, K, algorithm="hash",
                                      phases=2),
                       rounds=3, warmup_rounds=1)


if __name__ == "__main__":
    main()
