"""Chunk fusion — per-row loop vs fused kernels (ISSUE 2 acceptance bench).

The claim: on low-degree workloads the "vectorized" per-row kernels are
bound by interpreter overhead (~8 small-array numpy calls per row), so
fusing whole row-chunks into flat numpy passes (fused MSA scatter, ESC
sort/compress) should win big. Grids:

* **tc** — C = L ⊙ (L·L), PLUS_PAIR, R-MAT scales 8-10 (the acceptance
  gate reads the scale-10 point: fused ≥ 3× over the per-row loop);
* **ktruss-support** — S = E ⊙ (E·E) on the full symmetrized adjacency,
  the product every k-truss iteration performs;
* **complement** — ¬M ⊙ (A·B), PLUS_TIMES, ER graphs (the complement code
  paths fuse differently: unique-compressed key space).

Schemes: ``msa-loop`` (the retained per-row loop incl. its np.bincount
fast path), ``msa`` (chunk-fused scatter), ``esc`` (expand-sort-compress).
Every fused result is checked bit-identical against the loop (and the
smallest TC case against the pure-Python reference tier) before timings
are recorded.

``main()`` appends a run to ``BENCH_kernels.json`` at the repo root — the
perf-trajectory artifact documented in ``benchmarks/common.py``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from common import append_trajectory_run, emit, tc_workload
from repro.bench import render_table, time_callable
from repro.core import masked_spgemm
from repro.core import msa_kernel
from repro.core.reference import reference_masked_spgemm
from repro.core.types import stitch_blocks
from repro.graphs import erdos_renyi, rmat
from repro.graphs.prep import to_undirected_simple
from repro.mask import Mask
from repro.semiring import PLUS_PAIR, PLUS_TIMES
from repro.validation import INDEX_DTYPE

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: acceptance gate (ISSUE 2): fused speedup over the loop on this case
GATE_CASE, GATE_MIN_SPEEDUP = "tc-rmat-s10-e8", 3.0


def _loop_runner(A, B, mask, semiring):
    """The old per-row MSA path, stitched to CSR like the dispatcher does."""
    rows = np.arange(A.nrows, dtype=INDEX_DTYPE)

    def run():
        block = msa_kernel.numeric_rows_loop(A, B, mask, semiring, rows)
        return stitch_blocks([block], A.nrows, B.ncols)

    return run


def _fused_runner(A, B, mask, semiring, algorithm):
    return lambda: masked_spgemm(A, B, mask, algorithm=algorithm,
                                 semiring=semiring)


def _bit_identical(got, want) -> bool:
    """Strict contract: same pattern AND the same float bits (no tolerance)."""
    return got.same_pattern(want) and np.array_equal(got.data, want.data)


def _cases():
    """(case_name, workload_kind, A, B, mask, semiring) grid points."""
    out = []
    for s in (8, 9, 10):
        g = rmat(s, 8, rng=7000 + s)
        L, mask = tc_workload(g)
        out.append((f"tc-rmat-s{s}-e8", "tc", L, L, mask, PLUS_PAIR))
    for s in (9, 10):
        E = to_undirected_simple(rmat(s, 8, rng=7100 + s))
        out.append((f"ktruss-support-rmat-s{s}-e8", "ktruss-support",
                    E, E, Mask.from_matrix(E), PLUS_PAIR))
    for n_log in (9, 10):
        n = 1 << n_log
        A = erdos_renyi(n, 8, rng=7200 + n_log)
        B = erdos_renyi(n, 8, rng=7300 + n_log)
        M = erdos_renyi(n, 8, rng=7400 + n_log)
        out.append((f"complement-er-s{n_log}-d8", "complement",
                    A, B, Mask.from_matrix(M, complemented=True), PLUS_TIMES))
    return out


def main() -> None:
    emit("[Chunk fusion] per-row loop vs fused kernels")
    emit("msa-loop = retained per-row path (np.bincount fast path); "
         "msa = chunk-fused scatter; esc = expand-sort-compress\n")

    # bit-identity spot check against the pure-Python reference tier
    g = rmat(8, 8, rng=7008)
    L, mask = tc_workload(g)
    ref = reference_masked_spgemm(L, L, mask, "msa", PLUS_PAIR)
    for alg in ("msa", "esc"):
        got = masked_spgemm(L, L, mask, algorithm=alg, semiring=PLUS_PAIR)
        assert _bit_identical(got, ref), alg
    emit("reference-tier check: msa/esc bit-identical on tc-rmat-s8-e8 ✓\n")

    results, rows = [], []
    gate_speedup = None
    for case, kind, A, B, mask, semiring in _cases():
        runners = [("msa-loop", _loop_runner(A, B, mask, semiring))]
        for alg in ("msa", "esc"):
            runners.append((alg, _fused_runner(A, B, mask, semiring, alg)))
        baseline = runners[0][1]()
        loop_s = None
        for scheme, fn in runners:
            same = scheme == "msa-loop" or _bit_identical(fn(), baseline)
            seconds = time_callable(fn, repeats=3, warmup=1)
            if scheme == "msa-loop":
                loop_s = seconds
            speedup = loop_s / seconds
            results.append({"case": case, "workload": kind, "scheme": scheme,
                            "seconds": seconds, "speedup_vs_loop": speedup,
                            "identical_to_loop": bool(same)})
            rows.append([case, scheme, seconds * 1e3, speedup,
                         "yes" if same else "NO"])
            if case == GATE_CASE and scheme in ("msa", "esc"):
                gate_speedup = max(gate_speedup or 0.0, speedup)
    emit(render_table(["case", "scheme", "time (ms)", "speedup vs loop",
                       "identical"], rows))

    append_trajectory_run(ARTIFACT, "chunk_fusion", results)
    emit(f"\nappended run to {ARTIFACT.name} ({len(results)} results)")
    if gate_speedup is not None:
        verdict = "PASS" if gate_speedup >= GATE_MIN_SPEEDUP else "FAIL"
        emit(f"acceptance gate [{GATE_CASE}]: best fused speedup "
             f"{gate_speedup:.1f}x (need ≥ {GATE_MIN_SPEEDUP:.0f}x) → {verdict}")


# ----------------------------------------------------------------------- #
# pytest-benchmark faces (`pytest benchmarks/ --benchmark-only -k chunk`)
# ----------------------------------------------------------------------- #
def test_chunk_fusion_msa_loop(benchmark, tc_small):
    L, mask = tc_small
    benchmark.pedantic(_loop_runner(L, L, mask, PLUS_PAIR),
                       rounds=3, warmup_rounds=1)


def test_chunk_fusion_msa_fused(benchmark, tc_small):
    L, mask = tc_small
    got = benchmark.pedantic(_fused_runner(L, L, mask, PLUS_PAIR, "msa"),
                             rounds=3, warmup_rounds=1)
    assert _bit_identical(got, _loop_runner(L, L, mask, PLUS_PAIR)())


def test_chunk_fusion_esc(benchmark, tc_small):
    L, mask = tc_small
    got = benchmark.pedantic(_fused_runner(L, L, mask, PLUS_PAIR, "esc"),
                             rounds=3, warmup_rounds=1)
    assert _bit_identical(got, _loop_runner(L, L, mask, PLUS_PAIR)())


def test_chunk_fusion_esc_complement(benchmark, density_problem):
    A, B, mask = density_problem
    cmask = mask.complement()
    got = benchmark.pedantic(_fused_runner(A, B, cmask, PLUS_TIMES, "esc"),
                             rounds=3, warmup_rounds=1)
    assert _bit_identical(got, _loop_runner(A, B, cmask, PLUS_TIMES)())


if __name__ == "__main__":
    main()
