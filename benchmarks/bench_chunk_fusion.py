"""Chunk fusion — per-row loops vs fused kernels, direct write, chunk sizing.

The claim (ISSUE 2, extended by ISSUE 4): on low-degree workloads the
"vectorized" per-row kernels are bound by interpreter overhead (~8 small
numpy calls per row), so fusing whole row-chunks into flat numpy passes
should win big — and once a two-phase plan supplies exact row sizes, the
numeric pass should write straight into the final CSR arrays instead of
paying the stitch copy. Faces:

* **fused vs loop** — ``msa``/``esc`` (ISSUE 2) plus ``hash``/``heap``
  (ISSUE 4) against their retained ``*_rows_loop`` baselines on the TC /
  ktruss-support / complement grids. Gate: fused ≥ 3× on the scale-10 TC
  point (each fused kernel vs its own loop).
* **warm two-phase direct write vs stitch** — a cached plan in hand, the
  old warm path (single maximal chunk, RowBlock concat + stitch copy) vs
  the new one (cache-budget chunks scattering into preallocated arrays).
  Gate: ≥ 1.3× on at least one TC/complement face.
* **chunk-size ablation** — the cache-budget sweep
  (:func:`repro.parallel.partition.chunk_budget`) against the old
  ``nworkers × 4`` heuristic, on the largest TC face.

Every fused result is checked bit-identical against its loop baseline (and
the smallest TC case against the pure-Python reference tier) before timings
are recorded.

``main()`` appends a run to ``BENCH_kernels.json`` at the repo root — the
perf-trajectory artifact documented in ``benchmarks/common.py`` and
``docs/BENCHMARKS.md``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from common import append_trajectory_run, emit, tc_workload
from repro.bench import render_table, time_callable
from repro.core import build_plan, masked_spgemm
from repro.core import hash_kernel, heap_kernel, msa_kernel
from repro.core.reference import reference_masked_spgemm
from repro.core.types import stitch_blocks
from repro.graphs import erdos_renyi, rmat
from repro.graphs.prep import to_undirected_simple
from repro.mask import Mask
from repro.parallel.partition import chunk_budget
from repro.parallel.runner import parallel_masked_spgemm
from repro.semiring import PLUS_PAIR, PLUS_TIMES
from repro.validation import INDEX_DTYPE

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: acceptance gates: fused speedup over the per-row loop on this case
#: (ISSUE 2 for msa/esc; ISSUE 4 extends the same bar to hash/heap), and
#: warm-2P direct-write speedup over the stitch path on ≥ 1 face (ISSUE 4)
GATE_CASE, GATE_MIN_SPEEDUP = "tc-rmat-s10-e8", 3.0
DIRECT_GATE_MIN_SPEEDUP = 1.3
#: auto-routing gate (ISSUE 6): on the large ktruss-support face the
#: dispatcher must route to the per-row msa-loop tier and be no slower
#: than the fused kernel it used to pick
AUTO_GATE_CASE, AUTO_GATE_MIN_SPEEDUP = "ktruss-support-rmat-s10-e8", 1.0

#: (kernel, its retained per-row loop) — loops are the fusion baselines
LOOPS = {
    "msa": msa_kernel.numeric_rows_loop,
    "hash": hash_kernel.numeric_rows_loop,
    "heap": heap_kernel.numeric_rows_loop,
    "esc": msa_kernel.numeric_rows_loop,  # esc had no per-row ancestor;
    # msa-loop is the conventional baseline (ISSUE 2)
}


def _loop_runner(loop_fn, A, B, mask, semiring):
    """A per-row loop, stitched to CSR like the dispatcher does."""
    rows = np.arange(A.nrows, dtype=INDEX_DTYPE)

    def run():
        block = loop_fn(A, B, mask, semiring, rows)
        return stitch_blocks([block], A.nrows, B.ncols)

    return run


def _fused_runner(A, B, mask, semiring, algorithm):
    return lambda: masked_spgemm(A, B, mask, algorithm=algorithm,
                                 semiring=semiring)


def _bit_identical(got, want) -> bool:
    """Strict contract: same pattern AND the same float bits (no tolerance)."""
    return got.same_pattern(want) and np.array_equal(got.data, want.data)


def _cases():
    """(case_name, workload_kind, A, B, mask, semiring) grid points."""
    out = []
    for s in (8, 9, 10):
        g = rmat(s, 8, rng=7000 + s)
        L, mask = tc_workload(g)
        out.append((f"tc-rmat-s{s}-e8", "tc", L, L, mask, PLUS_PAIR))
    for s in (9, 10):
        E = to_undirected_simple(rmat(s, 8, rng=7100 + s))
        out.append((f"ktruss-support-rmat-s{s}-e8", "ktruss-support",
                    E, E, Mask.from_matrix(E), PLUS_PAIR))
    for n_log in (9, 10):
        n = 1 << n_log
        A = erdos_renyi(n, 8, rng=7200 + n_log)
        B = erdos_renyi(n, 8, rng=7300 + n_log)
        M = erdos_renyi(n, 8, rng=7400 + n_log)
        out.append((f"complement-er-s{n_log}-d8", "complement",
                    A, B, Mask.from_matrix(M, complemented=True), PLUS_TIMES))
    return out


def _direct_cases():
    """Larger faces for the warm-2P direct-write gate: streams big enough
    that assembly copies and chunk cache residency matter."""
    g = rmat(13, 8, rng=7013)
    L, mask = tc_workload(g)
    out = [(f"tc-rmat-s13-e8", "tc", L, L, mask, PLUS_PAIR,
            ("esc", "msa", "hash", "heap"))]
    n = 1 << 12
    A = erdos_renyi(n, 32, rng=7505)
    B = erdos_renyi(n, 32, rng=7506)
    M = erdos_renyi(n, 32, rng=7507)
    out.append(("complement-er-s12-d32", "complement", A, B,
                Mask.from_matrix(M, complemented=True), PLUS_TIMES,
                ("esc", "msa", "hash")))
    return out


def _bench_fused_vs_loop(results, rows):
    emit("== fused kernels vs their per-row loops ==")
    gate = {}
    for case, kind, A, B, mask, semiring in _cases():
        loop_seconds, loop_results = {}, {}
        for alg in ("msa", "esc", "hash", "heap"):
            loop_fn = LOOPS[alg]
            loop_name = "msa-loop" if alg in ("msa", "esc") else f"{alg}-loop"
            if loop_name not in loop_seconds:
                runner = _loop_runner(loop_fn, A, B, mask, semiring)
                loop_results[loop_name] = runner()  # baseline for identity
                loop_seconds[loop_name] = time_callable(runner, repeats=3,
                                                        warmup=1)
                results.append({"case": case, "workload": kind,
                                "scheme": loop_name,
                                "seconds": loop_seconds[loop_name],
                                "speedup_vs_loop": 1.0,
                                "identical_to_loop": True})
                rows.append([case, loop_name,
                             loop_seconds[loop_name] * 1e3, 1.0, "yes"])
            fused = _fused_runner(A, B, mask, semiring, alg)
            same = _bit_identical(fused(), loop_results[loop_name])
            seconds = time_callable(fused, repeats=3, warmup=1)
            speedup = loop_seconds[loop_name] / seconds
            results.append({"case": case, "workload": kind, "scheme": alg,
                            "seconds": seconds, "speedup_vs_loop": speedup,
                            "identical_to_loop": bool(same)})
            rows.append([case, alg, seconds * 1e3, speedup,
                         "yes" if same else "NO"])
            if case == GATE_CASE:
                gate[alg] = speedup
    return gate


def _expected_auto_pick() -> str:
    """What auto must pick on the ktruss-support gate case: the compiled
    msa when the native probe passes (it subsumes the loop tier's
    dispatch-overhead win), the per-row loop tier otherwise."""
    from repro.native import native_available

    return "msa-native" if native_available() else "msa-loop"


def _bench_auto_routing(results, rows):
    """ISSUE 6 face: the ktruss-support regime (C = E·E masked by E, long
    skewed rows) should route ``auto`` to the per-row ``msa-loop`` tier on
    the scale-10 point (``msa-native`` once the compiled tier is live) —
    and that routing must not lose to the fused ``msa`` the dispatcher
    previously picked."""
    from repro.core.registry import auto_select

    emit("\n== auto routing: ktruss-support loop tier ==")
    gate = {}
    for s in (9, 10):
        case = f"ktruss-support-rmat-s{s}-e8"
        E = to_undirected_simple(rmat(s, 8, rng=7100 + s))
        mask = Mask.from_matrix(E)
        picked = auto_select(E, E, mask)
        auto_run = _fused_runner(E, E, mask, PLUS_PAIR, "auto")
        msa_run = _fused_runner(E, E, mask, PLUS_PAIR, "msa")
        same = _bit_identical(auto_run(), msa_run())
        t_auto = time_callable(auto_run, repeats=3, warmup=1)
        t_msa = time_callable(msa_run, repeats=3, warmup=1)
        speedup = t_msa / t_auto
        results.append({"case": case, "workload": "auto-routing",
                        "scheme": f"auto({picked})", "seconds": t_auto,
                        "speedup_vs_msa_fused": speedup,
                        "identical_to_loop": bool(same)})
        rows.append([case, f"auto({picked})", t_auto * 1e3, speedup,
                     "yes" if same else "NO"])
        if case == AUTO_GATE_CASE:
            gate = {"picked": picked, "speedup": speedup, "identical": same}
    return gate


def _bench_direct_write(results, rows):
    emit("\n== warm two-phase: direct write vs stitch ==")
    best = {}
    for case, kind, A, B, mask, semiring, algs in _direct_cases():
        for alg in algs:
            plan = build_plan(A, B, mask, algorithm=alg, phases=2)

            def stitch():
                # the pre-direct-write warm path: one maximal chunk (the old
                # lone-worker heuristic), RowBlock concat + stitch copy
                return parallel_masked_spgemm(
                    A, B, mask, algorithm=alg, semiring=semiring, phases=2,
                    plan=plan, nchunks=1, direct_write=False)

            def direct():
                # the new warm path: cache-budget chunks scattering into
                # preallocated CSR arrays
                return masked_spgemm(A, B, mask, algorithm=alg,
                                     semiring=semiring, phases=2, plan=plan)

            same = _bit_identical(direct(), stitch())
            t_stitch = time_callable(stitch, repeats=3, warmup=1)
            t_direct = time_callable(direct, repeats=3, warmup=1)
            speedup = t_stitch / t_direct
            for scheme, sec in ((f"{alg}-2p-stitch", t_stitch),
                                (f"{alg}-2p-direct", t_direct)):
                results.append({"case": case, "workload": f"warm2p-{kind}",
                                "scheme": scheme, "seconds": sec,
                                "speedup_vs_stitch": (1.0 if "stitch" in scheme
                                                      else speedup),
                                "identical_to_loop": bool(same)})
            rows.append([case, f"{alg}-2p-direct", t_direct * 1e3,
                         speedup, "yes" if same else "NO"])
            best[(case, alg)] = speedup
    return best


def _bench_chunk_ablation(results, rows):
    """Budget sweep vs the old worker-count heuristic, warm 2P on the
    largest TC face (serial: the old heuristic gave one maximal chunk)."""
    emit("\n== chunk-size ablation: cache budget vs nworkers×4 ==")
    g = rmat(13, 8, rng=7013)
    L, mask = tc_workload(g)
    plan = build_plan(L, L, mask, algorithm="esc", phases=2)
    case = "tc-rmat-s13-e8"

    def runner(nchunks):
        return lambda: parallel_masked_spgemm(
            L, L, mask, algorithm="esc", semiring=PLUS_PAIR, phases=2,
            plan=plan, nchunks=nchunks)

    points = [("nworkersx4-serial", 1)]  # old heuristic, 1 worker → 1 chunk
    from repro.core.expand import total_flops

    work = total_flops(L, L) + mask.nnz
    for mib in (1, 4, 16, 64):
        budget = chunk_budget(mib << 20)
        points.append((f"budget-{mib}MiB",
                       max(1, int(np.ceil(work / budget)))))
    for label, nchunks in points:
        seconds = time_callable(runner(nchunks), repeats=3, warmup=1)
        results.append({"case": case, "workload": "chunk-ablation",
                        "scheme": label, "seconds": seconds,
                        "nchunks": int(nchunks)})
        rows.append([case, label, seconds * 1e3,
                     float("nan"), f"n={nchunks}"])


def main() -> None:
    emit("[Chunk fusion] per-row loops vs fused kernels, direct write, "
         "chunk sizing")
    emit("*-loop = retained per-row baselines; msa/esc/hash/heap = "
         "chunk-fused; *-2p-direct = warm plan + direct-to-CSR writes\n")

    # bit-identity spot check against the pure-Python reference tier
    g = rmat(8, 8, rng=7008)
    L, mask = tc_workload(g)
    ref = reference_masked_spgemm(L, L, mask, "msa", PLUS_PAIR)
    for alg in ("msa", "esc", "hash", "heap"):
        got = masked_spgemm(L, L, mask, algorithm=alg, semiring=PLUS_PAIR)
        assert _bit_identical(got, ref), alg
    emit("reference-tier check: msa/esc/hash/heap bit-identical on "
         "tc-rmat-s8-e8 ✓\n")

    results, rows = [], []
    gate = _bench_fused_vs_loop(results, rows)
    auto_gate = _bench_auto_routing(results, rows)
    direct = _bench_direct_write(results, rows)
    _bench_chunk_ablation(results, rows)
    emit(render_table(["case", "scheme", "time (ms)", "speedup", "note"],
                      rows))

    append_trajectory_run(ARTIFACT, "chunk_fusion", results)
    emit(f"\nappended run to {ARTIFACT.name} ({len(results)} results)")

    legacy = max(gate.get("msa", 0.0), gate.get("esc", 0.0))
    verdict = "PASS" if legacy >= GATE_MIN_SPEEDUP else "FAIL"
    emit(f"acceptance gate [{GATE_CASE}] msa/esc: best fused speedup "
         f"{legacy:.1f}x (need ≥ {GATE_MIN_SPEEDUP:.0f}x) → {verdict}")
    for alg in ("hash", "heap"):
        sp = gate.get(alg, 0.0)
        verdict = "PASS" if sp >= GATE_MIN_SPEEDUP else "FAIL"
        emit(f"acceptance gate [{GATE_CASE}] {alg}: fused {sp:.1f}x over "
             f"{alg}-loop (need ≥ {GATE_MIN_SPEEDUP:.0f}x) → {verdict}")
    best_face = max(direct, key=direct.get)
    best = direct[best_face]
    verdict = "PASS" if best >= DIRECT_GATE_MIN_SPEEDUP else "FAIL"
    emit(f"acceptance gate [warm-2p direct write]: best "
         f"{best:.2f}x on {best_face[0]}/{best_face[1]} "
         f"(need ≥ {DIRECT_GATE_MIN_SPEEDUP}x on ≥1 face) → {verdict}")
    want_pick = _expected_auto_pick()
    ok_auto = (auto_gate.get("picked") == want_pick
               and auto_gate.get("identical", False)
               and auto_gate.get("speedup", 0.0) >= AUTO_GATE_MIN_SPEEDUP)
    verdict = "PASS" if ok_auto else "FAIL"
    emit(f"acceptance gate [{AUTO_GATE_CASE}] auto routing: picked "
         f"{auto_gate.get('picked')!r} (need {want_pick!r}), "
         f"{auto_gate.get('speedup', 0.0):.2f}x vs fused msa "
         f"(need ≥ {AUTO_GATE_MIN_SPEEDUP:.1f}x) → {verdict}")


# ----------------------------------------------------------------------- #
# pytest-benchmark faces (`pytest benchmarks/ --benchmark-only -k chunk`)
# ----------------------------------------------------------------------- #
def test_chunk_fusion_msa_loop(benchmark, tc_small):
    L, mask = tc_small
    benchmark.pedantic(
        _loop_runner(msa_kernel.numeric_rows_loop, L, L, mask, PLUS_PAIR),
        rounds=3, warmup_rounds=1)


def test_chunk_fusion_msa_fused(benchmark, tc_small):
    L, mask = tc_small
    got = benchmark.pedantic(_fused_runner(L, L, mask, PLUS_PAIR, "msa"),
                             rounds=3, warmup_rounds=1)
    assert _bit_identical(
        got, _loop_runner(msa_kernel.numeric_rows_loop, L, L, mask,
                          PLUS_PAIR)())


def test_chunk_fusion_esc(benchmark, tc_small):
    L, mask = tc_small
    got = benchmark.pedantic(_fused_runner(L, L, mask, PLUS_PAIR, "esc"),
                             rounds=3, warmup_rounds=1)
    assert _bit_identical(
        got, _loop_runner(msa_kernel.numeric_rows_loop, L, L, mask,
                          PLUS_PAIR)())


def test_chunk_fusion_hash_fused(benchmark, tc_small):
    L, mask = tc_small
    got = benchmark.pedantic(_fused_runner(L, L, mask, PLUS_PAIR, "hash"),
                             rounds=3, warmup_rounds=1)
    assert _bit_identical(
        got, _loop_runner(hash_kernel.numeric_rows_loop, L, L, mask,
                          PLUS_PAIR)())


def test_chunk_fusion_heap_fused(benchmark, tc_small):
    L, mask = tc_small
    got = benchmark.pedantic(_fused_runner(L, L, mask, PLUS_PAIR, "heap"),
                             rounds=3, warmup_rounds=1)
    assert _bit_identical(
        got, _loop_runner(heap_kernel.numeric_rows_loop, L, L, mask,
                          PLUS_PAIR)())


def test_chunk_fusion_esc_complement(benchmark, density_problem):
    A, B, mask = density_problem
    cmask = mask.complement()
    got = benchmark.pedantic(_fused_runner(A, B, cmask, PLUS_TIMES, "esc"),
                             rounds=3, warmup_rounds=1)
    assert _bit_identical(
        got, _loop_runner(msa_kernel.numeric_rows_loop, A, B, cmask,
                          PLUS_TIMES)())


def test_chunk_fusion_direct_write_warm(benchmark, tc_small):
    """Warm-2P direct-write path (plan hit → preallocate → scatter)."""
    L, mask = tc_small
    plan = build_plan(L, L, mask, algorithm="esc", phases=2)
    got = benchmark.pedantic(
        lambda: masked_spgemm(L, L, mask, algorithm="esc",
                              semiring=PLUS_PAIR, phases=2, plan=plan),
        rounds=3, warmup_rounds=1)
    assert _bit_identical(got, _fused_runner(L, L, mask, PLUS_PAIR, "esc")())


def test_chunk_fusion_auto_ktruss_loop(benchmark):
    """Routing face: on the large ktruss-support regime ``auto`` must pick
    the per-row msa-loop tier (msa-native when the compiled tier is live)
    and stay bit-identical to fused msa."""
    from repro.core.registry import auto_select

    E = to_undirected_simple(rmat(10, 8, rng=7110))
    mask = Mask.from_matrix(E)
    assert auto_select(E, E, mask) == _expected_auto_pick()
    got = benchmark.pedantic(_fused_runner(E, E, mask, PLUS_PAIR, "auto"),
                             rounds=3, warmup_rounds=1)
    assert _bit_identical(got, _fused_runner(E, E, mask, PLUS_PAIR, "msa")())


def test_chunk_fusion_budget_ablation_smoke(benchmark, tc_small):
    """Smallest-grid budget sweep: cache-budget chunking must stay within
    noise of the single-chunk heuristic on a grid that fits one budget."""
    L, mask = tc_small
    plan = build_plan(L, L, mask, algorithm="esc", phases=2)
    single = parallel_masked_spgemm(L, L, mask, algorithm="esc",
                                    semiring=PLUS_PAIR, phases=2, plan=plan,
                                    nchunks=1)
    got = benchmark.pedantic(
        lambda: parallel_masked_spgemm(L, L, mask, algorithm="esc",
                                       semiring=PLUS_PAIR, phases=2,
                                       plan=plan, nchunks=4),
        rounds=3, warmup_rounds=1)
    assert _bit_identical(got, single)


if __name__ == "__main__":
    main()
