"""Sharded serving vs the single-process process-pool stitch path.

The shard layer exists to give process-level parallelism the direct-write
numeric path: before PR 5, a process-pool request forked a fresh pool,
pickled every chunk's RowBlock back through a pipe, and stitched — paying
pool startup + serialization + concat on every product. The shard
coordinator amortizes the pool across requests and replaces the pipe with
shared memory (workers scatter straight into the output CSR), so the warm
serving path should beat the process-pool stitch path even at equal
parallelism.

This bench measures exactly that claim on the gate workload
(**tc-rmat-s13-e8**, the repeated-mask TC product ``L ⊙ (L·L)`` with the
auto-selected ``esc`` kernel, 2P, warm plans):

* ``procpool-stitch`` — ``parallel_masked_spgemm`` on a fresh
  :class:`~repro.parallel.executor.ProcessExecutor` per request (the PR-4
  state of the art for multi-process numeric execution);
* ``shard-direct`` — warm :meth:`ShardCoordinator.multiply` on the
  persistent pool, operands pre-shared, plan pre-split;
* ``inprocess-direct`` — the serial direct-write path, for scale.

Every mode's output is checked bit-identical before timings count, and the
segment-hygiene invariant (nothing left in ``/dev/shm`` after ``close()``)
is part of the gate row.

``main()`` appends one ``shard_scaling`` run to ``BENCH_service.json``
(multi-bench trajectory envelope — see ``benchmarks/common.py``). Gate
(ISSUE 5): warm sharded serving ≥ **1.2×** the process-pool stitch path.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from common import append_trajectory_run, emit, latest_trajectory_run, tc_workload
from repro.bench import render_table
from repro.bench.metrics import latency_percentiles
from repro.core import build_plan
from repro.graphs import rmat
from repro.parallel.executor import ProcessExecutor
from repro.parallel.runner import parallel_masked_spgemm
from repro.semiring import PLUS_PAIR
from repro.shard import ShardCoordinator, shared_memory_available

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: acceptance gate (ISSUE 5): warm sharded vs process-pool stitch
GATE_MIN_SPEEDUP = 1.2

CASE_SCALE, CASE_EDGE = 13, 8
ALGO = "esc"          # auto-select's pick for the short-row TC regime
NSHARDS = 2
REQUESTS = 8          # timed warm requests per mode
WARMUP = 2


def _case_name(scale=CASE_SCALE, edge=CASE_EDGE):
    return f"tc-rmat-s{scale}-e{edge}-{ALGO}2p"


def _workload(scale=CASE_SCALE, edge=CASE_EDGE):
    L, mask = tc_workload(rmat(scale, edge, rng=7000 + scale))
    plan = build_plan(L, L, mask, algorithm=ALGO, phases=2)
    return L, mask, plan


def _time_mode(fn, baseline, *, requests=REQUESTS, warmup=WARMUP):
    """Run ``fn`` warm; returns (latencies, result). Bit-identity against
    ``baseline`` is asserted on every repeat before its time is recorded."""
    lat = []
    out = None
    for i in range(warmup + requests):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        if baseline is not None:
            assert out.same_pattern(baseline) and \
                np.array_equal(out.data, baseline.data), "NOT bit-identical"
        if i >= warmup:
            lat.append(dt)
    return lat, out


def _mode_row(case, mode, shards, latencies):
    pct = latency_percentiles(latencies, percentiles=(50, 95))
    wall = float(np.sum(latencies))
    return {"case": case, "mode": mode, "shards": shards,
            "requests": len(latencies), "wall_seconds": wall,
            "rps": len(latencies) / wall,
            "mean_ms": float(np.mean(latencies)) * 1e3,
            "p50_ms": pct[50] * 1e3, "p95_ms": pct[95] * 1e3}


def bench_case(scale=CASE_SCALE, edge=CASE_EDGE, *, nshards=NSHARDS,
               requests=REQUESTS):
    """All modes for one graph; returns (mode rows, gate row)."""
    L, mask, plan = _workload(scale, edge)
    case = _case_name(scale, edge)

    # reference result (serial direct write) — every mode must match it
    baseline = parallel_masked_spgemm(L, L, mask, algorithm=ALGO,
                                      semiring=PLUS_PAIR, phases=2, plan=plan)

    serial_lat, _ = _time_mode(
        lambda: parallel_masked_spgemm(L, L, mask, algorithm=ALGO,
                                       semiring=PLUS_PAIR, phases=2,
                                       plan=plan),
        baseline, requests=requests)

    # process-pool stitch: a fresh fork pool per request, RowBlocks pickled
    # back, stitched — how multi-process numeric ran before the shard layer
    def procpool():
        ex = ProcessExecutor(nshards)
        try:
            return parallel_masked_spgemm(L, L, mask, algorithm=ALGO,
                                          semiring=PLUS_PAIR, phases=2,
                                          plan=plan, executor=ex)
        finally:
            ex.close()

    stitch_lat, _ = _time_mode(procpool, baseline, requests=requests)

    # sharded direct write: persistent pool, shared operands, warm splits
    coord = ShardCoordinator(nshards)
    try:
        a_key, _ = coord._adhoc_handle(L)
        m_key, _ = coord._adhoc_handle(mask)
        shard_lat, _ = _time_mode(
            lambda: coord.multiply(a_key, a_key, m_key, mask, plan,
                                   PLUS_PAIR, plan_cache_key=(case,)),
            baseline, requests=requests)
        names = coord.store.live_segment_names()
    finally:
        coord.close()
    shm = Path("/dev/shm")
    unlinked = not shm.is_dir() or not any(
        (shm / n.lstrip("/")).exists() for n in names)

    rows = [_mode_row(case, "inprocess-direct", 0, serial_lat),
            _mode_row(case, "procpool-stitch", nshards, stitch_lat),
            _mode_row(case, "shard-direct", nshards, shard_lat)]
    speedup = float(np.mean(stitch_lat) / np.mean(shard_lat))
    gate = {"case": case, "mode": "shard-gate", "shards": nshards,
            "requests": len(shard_lat),
            "stitch_mean_ms": float(np.mean(stitch_lat)) * 1e3,
            "shard_mean_ms": float(np.mean(shard_lat)) * 1e3,
            "speedup_vs_stitch": speedup, "bit_identical": True,
            "segments_unlinked": bool(unlinked),
            "gate_min": GATE_MIN_SPEEDUP,
            "gate_pass": bool(speedup >= GATE_MIN_SPEEDUP and unlinked)}
    return rows, gate


def main() -> None:
    if not shared_memory_available():
        emit("no usable shared memory on this machine; shard bench skipped")
        raise SystemExit(0)
    emit(f"[Shard] warm sharded serving vs process-pool stitch "
         f"(repeated-mask TC, {ALGO}-2P, {NSHARDS} workers)")
    emit("procpool-stitch = fresh fork pool per request + pickled RowBlocks "
         "+ stitch; shard-direct = persistent pool + shared-memory direct "
         "write\n")
    rows, gate = bench_case()
    table = [[r["case"], r["mode"], r["shards"], r["requests"], r["rps"],
              r["mean_ms"], r["p50_ms"], r["p95_ms"]] for r in rows]
    emit(render_table(["case", "mode", "shards", "reqs", "req/s",
                       "mean (ms)", "p50 (ms)", "p95 (ms)"], table))
    emit(f"\n[Shard] gate: shard-direct vs procpool-stitch on {gate['case']}")
    emit(render_table(
        ["case", "stitch (ms)", "shard (ms)", "speedup", "segments",
         f"gate ≥{GATE_MIN_SPEEDUP}x"],
        [[gate["case"], gate["stitch_mean_ms"], gate["shard_mean_ms"],
          gate["speedup_vs_stitch"],
          "unlinked" if gate["segments_unlinked"] else "LEAKED",
          "PASS" if gate["gate_pass"] else "FAIL"]]))

    prev = latest_trajectory_run(ARTIFACT, bench="shard_scaling")
    append_trajectory_run(ARTIFACT, "shard_scaling", rows + [gate])
    emit(f"\nappended run to {ARTIFACT.name} ({len(rows) + 1} results)")
    if prev is not None:
        drift = {r["case"]: r["speedup_vs_stitch"]
                 for r in prev["results"] if r.get("mode") == "shard-gate"}
        if gate["case"] in drift:
            emit(f"  shard-speedup drift [{gate['case']}]: "
                 f"{drift[gate['case']]:.2f}x → "
                 f"{gate['speedup_vs_stitch']:.2f}x")
    if gate["gate_pass"]:
        emit(f"acceptance gate: warm sharded serving "
             f"{gate['speedup_vs_stitch']:.2f}x over the process-pool "
             f"stitch path (≥{GATE_MIN_SPEEDUP}x) with all segments "
             f"unlinked → PASS")
    else:
        emit("acceptance gate: FAIL")
        raise SystemExit(1)


# ----------------------------------------------------------------------- #
# pytest-benchmark face (`pytest benchmarks/ --benchmark-only -k shard`)
# ----------------------------------------------------------------------- #
def test_shard_warm_stream(benchmark):
    """CI smoke: a warm sharded stream on a small grid stays bit-identical
    and leaks nothing. Skips cleanly on runners without shared memory."""
    import pytest

    if not shared_memory_available():
        pytest.skip("no usable shared memory on this runner")
    L, mask, plan = _workload(scale=8, edge=4)
    baseline = parallel_masked_spgemm(L, L, mask, algorithm=ALGO,
                                      semiring=PLUS_PAIR, phases=2, plan=plan)
    coord = ShardCoordinator(2)
    try:
        a_key, _ = coord._adhoc_handle(L)
        m_key, _ = coord._adhoc_handle(mask)

        def run():
            return coord.multiply(a_key, a_key, m_key, mask, plan,
                                  PLUS_PAIR, plan_cache_key=("smoke",))

        out = benchmark.pedantic(run, rounds=3, warmup_rounds=1)
        assert out.same_pattern(baseline)
        assert np.array_equal(out.data, baseline.data)
        names = coord.store.live_segment_names()
    finally:
        coord.close()
    shm = Path("/dev/shm")
    assert not shm.is_dir() or not any(
        (shm / n.lstrip("/")).exists() for n in names)


if __name__ == "__main__":
    main()
