"""Figure 9 — Triangle Counting: our best three vs SuiteSparse baselines.

Paper: MSA-1P / Hash-1P / MCA-1P against SS:SAXPY and SS:DOT; "all our
algorithms outperform SS:GB algorithms in almost all cases".

Our baselines are algorithmic stand-ins (DESIGN.md): ``saxpy`` multiplies
then masks (wasting the flops masking should save), ``saxpy-scipy`` does the
same through scipy's compiled SpGEMM (a *stronger* absolute baseline), and
``dot`` is pull-based with a per-call transpose of B. The reproducible claim
is that mask-aware kernels beat multiply-then-mask of the *same* kernel
quality — i.e. ours vs ``saxpy``/``dot``; ``saxpy-scipy`` is reported to
show where compiled-vs-Python constants, not algorithmics, dominate.
"""

from __future__ import annotations

from common import emit, tc_grid_over_suite, tc_runner
from repro.bench import performance_profile, render_profile

BEST_OURS = [("msa", 1), ("hash", 1), ("mca", 1)]


def main() -> None:
    emit("[Figure 9] Triangle Counting: best-3 ours vs SS:GB baselines")
    emit("paper: ours beat SS:SAXPY / SS:DOT in almost all cases\n")
    grid = tc_grid_over_suite(BEST_OURS, repeats=1, include_baselines=True)

    # primary comparison: same implementation tier (python/numpy kernels) —
    # this isolates the *algorithmic* claim the paper makes
    same_tier = {k: v for k, v in grid.times.items()
                 if k != "SS:SAXPY*(scipy)"}
    prof = performance_profile(same_tier)
    emit(render_profile("TC: ours vs same-tier baselines", prof))
    emit(f"\nranking (best first): {', '.join(prof.ranking())}")

    # secondary: the compiled scipy multiply-then-mask. It wins on raw
    # constants (C vs numpy-batch Python), which is an implementation-tier
    # statement, not an algorithmic one — report the gap for transparency.
    import numpy as np

    scipy_t = grid.times.get("SS:SAXPY*(scipy)", {})
    best_label = prof.ranking()[0]
    ratios = [grid.times[best_label][c] / scipy_t[c]
              for c in scipy_t if c in grid.times.get(best_label, {})]
    if ratios:
        emit(f"\ncompiled reference point: scipy multiply-then-mask is "
             f"{np.median(ratios):.1f}x faster than our best Python kernel "
             f"(median over suite) — the constant-factor gap a C backend "
             f"would close; the paper's own comparison is C++ vs C.")


# ----------------------------------------------------------------------- #
def test_tc_ours_msa(benchmark, tc_small):
    L, mask = tc_small
    benchmark.pedantic(tc_runner(L, mask, "msa", 1), rounds=3, warmup_rounds=1)


def test_tc_baseline_saxpy(benchmark, tc_small):
    """Multiply-then-mask: the work the mask-aware kernels avoid."""
    L, mask = tc_small
    benchmark.pedantic(tc_runner(L, mask, "saxpy", 1), rounds=3,
                       warmup_rounds=1)


def test_tc_baseline_dot(benchmark, tc_small):
    """Pull baseline paying a per-call transpose of B."""
    L, mask = tc_small
    benchmark.pedantic(tc_runner(L, mask, "dot", 1), rounds=3, warmup_rounds=1)


if __name__ == "__main__":
    main()
