"""Figure 15 — Betweenness Centrality MTEPS vs R-MAT scale.

Paper: batch 512, R-MAT scales 8-20; "the schemes based on push-based
algorithms, i.e., MSA-1P, Hash-1P, and SS:SAXPY are able to increase their
MTEPS rate with increasing matrix scale"; SS:DOT collapses because the BC
mask gets dense and it re-transposes B every call.

Reproduction: batch 32, scales 6-11. MTEPS = batch × edges / time (§8.4,
metric in :func:`repro.bench.metrics.mteps`). BC uses complemented masks in
the forward stage, so only complement-capable schemes run (MCA excluded, as
in the paper).
"""

from __future__ import annotations

import numpy as np

from common import emit
from repro.algorithms import betweenness_centrality
from repro.bench import mteps, render_series, time_callable
from repro.core import display_name
from repro.graphs import rmat

BATCH = 32
SCALES = range(6, 12)
SCHEMES = [("msa", 1), ("hash", 1), ("msa", 2), ("hash", 2)]


def bc_workload(scale: int):
    g = rmat(scale, 8, rng=1500 + scale)
    rng = np.random.default_rng(scale)
    sources = rng.choice(g.nrows, size=min(BATCH, g.nrows), replace=False)
    return g, sources


def main() -> None:
    emit(f"[Figure 15] Betweenness Centrality: MTEPS vs R-MAT scale "
         f"(batch {BATCH})")
    emit("paper: push-based schemes grow MTEPS with scale; dense masks doom "
         "pull-based\n")
    series: dict[str, list[tuple[float, float]]] = {}
    for scale in SCALES:
        g, sources = bc_workload(scale)
        edges = g.nnz // 2
        for alg, ph in SCHEMES:
            label = display_name(alg, ph)
            t = time_callable(
                lambda a=alg, p=ph: betweenness_centrality(
                    g, sources, algorithm=a, phases=p),
                repeats=1, warmup=1)
            series.setdefault(label, []).append(
                (scale, mteps(len(sources), edges, t)))
    emit(render_series("BC MTEPS vs scale", "scale", "MTEPS", series))
    for label, pts in series.items():
        ys = [y for _, y in pts]
        emit(f"{label}: rate at smallest scale {ys[0]:.3f}, at largest "
             f"{ys[-1]:.3f} MTEPS")


# ----------------------------------------------------------------------- #
def test_bc_scale8_msa(benchmark):
    g, sources = bc_workload(8)
    benchmark.pedantic(
        lambda: betweenness_centrality(g, sources, algorithm="msa"),
        rounds=2, warmup_rounds=1)


def test_bc_scale8_hash(benchmark):
    g, sources = bc_workload(8)
    benchmark.pedantic(
        lambda: betweenness_centrality(g, sources, algorithm="hash"),
        rounds=2, warmup_rounds=1)


if __name__ == "__main__":
    main()
