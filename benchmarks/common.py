"""Shared workload builders and reporting glue for the per-figure benches.

Every ``bench_figXX_*.py`` module has two faces:

* **pytest-benchmark tests** (collected by ``pytest benchmarks/
  --benchmark-only``) timing a *representative subset* of the figure's grid,
  sized to keep the whole bench suite in CI budgets; and
* a ``main()`` that sweeps the figure's **full (scaled) grid** and prints the
  same rows/series the paper plots. ``python benchmarks/bench_figXX_*.py``
  regenerates the figure's data; EXPERIMENTS.md records those outputs.

Scaling note (DESIGN.md §2): paper grids run at R-MAT scales 8-20 on 32-68
cores; ours run at scales 6-12 on a laptop-class box. Crossovers are driven
by density ratios, which the scaled grids preserve.

Perf-trajectory artifacts (``BENCH_kernels.json``, ``BENCH_service.json``)
--------------------------------------------------------------------------
Benches that back acceptance gates record timings into JSON *trajectory*
files at the repo root so speedups can be tracked across commits rather than
eyeballed once (see ``docs/BENCHMARKS.md`` for the full schema reference).
Shared envelope (``repro-perf-trajectory-v1``, written by
:func:`append_trajectory_run`)::

    {
      "schema": "repro-perf-trajectory-v1",
      "bench": "chunk_fusion",            # which bench owns this artifact
      "runs": [
        {
          "timestamp": 1722200000,        # unix seconds of the run
          "results": [ {...}, ... ]       # bench-specific result rows
        }, ...
      ]
    }

Result rows by artifact:

* ``BENCH_kernels.json`` (bench ``chunk_fusion``) — three face families,
  disambiguated by ``workload``: fused-vs-loop rows (``workload`` tc |
  ktruss-support | complement; ``scheme`` msa-loop | hash-loop | heap-loop |
  msa | esc | hash | heap; ``speedup_vs_loop`` vs the matching loop
  baseline), warm-2P direct-write rows (``workload`` warm2p-*; ``scheme``
  ``<alg>-2p-stitch``/``<alg>-2p-direct`` with ``speedup_vs_stitch``), and
  chunk-ablation rows (``workload`` chunk-ablation; ``scheme``
  nworkersx4-serial | budget-<N>MiB with ``nchunks``). All numeric rows
  carry ``seconds`` (best-of-repeats) and a bit-identity flag;
* ``BENCH_service.json`` (bench ``serve_throughput``) — one row per
  serving mode: ``case``, ``mode`` (cold | warm-plan | result-hit),
  ``requests``, ``wall_seconds``, ``rps``, ``mean_ms``/``p50_ms``/
  ``p95_ms``; plus one ``mode: warm-restart`` row per run carrying the
  plan-persistence gate (``plan_hit_rate``, ``speedup_vs_cold``,
  ``gate_min``, ``gate_pass``).

Each invocation *appends* one run, preserving history; downstream tooling
(and the ISSUE acceptance gates) read the latest run.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro import Mask, PLUS_PAIR
from repro.bench import GridResult, run_grid, time_callable
from repro.core import display_name, masked_spgemm
from repro.graphs import rmat, suite_graphs
from repro.graphs.prep import triangle_prep

#: the scheme variants of Fig. 8/12 (the paper's 6 algorithms plus the
#: chunk-fused ``esc`` extension, × {1P, 2P})
OUR_SCHEMES = [(alg, ph)
               for alg in ("msa", "esc", "hash", "mca", "heap", "heapdot",
                           "inner")
               for ph in (1, 2)]

#: complement-capable schemes (Fig. 16's candidates + chunk-fused esc)
COMPLEMENT_SCHEMES = [(alg, ph) for alg in ("msa", "esc", "hash")
                      for ph in (1, 2)]

#: baseline stand-ins (see DESIGN.md substitution table)
BASELINES = ["saxpy", "saxpy-scipy", "dot"]


def scheme_name(alg: str, phases: int = 1) -> str:
    return display_name(alg, phases)


def tc_workload(g):
    """Triangle-counting masked-product workload for one graph: the paper
    times only the Masked SpGEMM (§8.2), so the workload is C = L ⊙ (L·L)."""
    L = triangle_prep(g)
    mask = Mask.from_matrix(L)
    return L, mask


def tc_runner(L, mask, alg: str, phases: int = 1, executor=None):
    return lambda: masked_spgemm(L, L, mask, algorithm=alg,
                                 semiring=PLUS_PAIR, phases=phases,
                                 executor=executor)


def tc_grid_over_suite(schemes, *, limit=None, exclude_largest=False,
                       repeats=1, include_baselines=False) -> GridResult:
    """Time the TC masked product for every suite graph × scheme."""
    cases = []
    for name, g in suite_graphs(limit=limit, exclude_largest=exclude_largest):
        L, mask = tc_workload(g)

        def make(scheme, L=L, mask=mask):
            if isinstance(scheme, tuple):
                alg, ph = scheme
                return tc_runner(L, mask, alg, ph)
            return tc_runner(L, mask, scheme, 1)

        cases.append((name, make))
    names = list(schemes) + (list(BASELINES) if include_baselines else [])
    grid = run_grid(cases, names, repeats=repeats, warmup=1)
    # re-key tuples to display names
    out = GridResult()
    for scheme, per in grid.times.items():
        label = (scheme_name(*scheme) if isinstance(scheme, tuple)
                 else scheme_name(scheme))
        for case, t in per.items():
            out.record(label, case, t)
    return out


def rmat_tc_workloads(scales, edge_factor=8, seed_base=7000):
    """(scale, L, mask, flops) tuples for the scaling figures."""
    from repro.bench import spgemm_flops

    out = []
    for s in scales:
        g = rmat(s, edge_factor, rng=seed_base + s)
        L, mask = tc_workload(g)
        out.append((s, L, mask, spgemm_flops(L, L)))
    return out


def emit(text: str) -> None:
    """Print a report block (flushed so piping to tee works cleanly)."""
    print(text)
    sys.stdout.flush()


# ----------------------------------------------------------------------- #
# perf-trajectory artifacts (see module docstring for the schema)
# ----------------------------------------------------------------------- #
TRAJECTORY_SCHEMA = "repro-perf-trajectory-v1"


def append_trajectory_run(artifact: Path, bench: str,
                          results: list[dict]) -> None:
    """Append one timestamped run to a trajectory artifact, preserving the
    runs already recorded there. A corrupt file (or one with a foreign
    schema) starts a fresh trajectory rather than poisoning history.

    One artifact may carry runs from *several* benches (e.g.
    ``BENCH_service.json`` holds both the serve-throughput faces and the
    shard-scaling faces): each run is tagged with its ``bench``, and the
    doc-level ``bench`` field names the first owner for back-compat with
    older readers. Use ``latest_trajectory_run(..., bench=...)`` to read a
    specific bench's most recent run.
    """
    doc = {"schema": TRAJECTORY_SCHEMA, "bench": bench, "runs": []}
    if artifact.exists():
        try:
            prev = json.loads(artifact.read_text())
            if prev.get("schema") == TRAJECTORY_SCHEMA:
                doc = prev
        except (json.JSONDecodeError, OSError):
            pass
    doc["runs"].append({"timestamp": int(time.time()), "bench": bench,
                        "results": results})
    artifact.write_text(json.dumps(doc, indent=2) + "\n")


def latest_trajectory_run(artifact: Path, bench: str | None = None
                          ) -> dict | None:
    """The most recent run recorded in a trajectory artifact, or None.

    ``bench`` filters to that bench's runs (runs written before the
    multi-bench envelope carry no tag and match the doc-level owner)."""
    try:
        doc = json.loads(artifact.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    runs = doc.get("runs") or []
    if bench is not None:
        owner = doc.get("bench")
        runs = [r for r in runs if r.get("bench", owner) == bench]
    return runs[-1] if runs else None
