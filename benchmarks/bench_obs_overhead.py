"""Observability overhead — warm-2P serving latency, tracing on vs off.

The observability claim (ISSUE 6): phase-level tracing and the metrics
registry must be cheap enough to leave on in production. The hot path they
tax most is the **warm two-phase** request — a plan hit followed by the
numeric pass only — where each request pays a handful of span context
managers (cache lookup, numeric, per-chunk timings), a trace-record
allocation in the tracer ring, and the post-execution span→histogram
harvest. Cold requests amortize the same fixed cost over far more work, so
gating on warm-2P bounds the worst case.

Protocol: one engine per mode (``tracing=True`` / ``tracing=False``), same
repeated-mask TC workload (hash-2P on a suite R-MAT graph), one cold submit
to populate the plan cache, then the mean per-request latency over a long
warm stream, best-of-repeats. The tracing-on engine carries the full v2
diagnosis stack (ISSUE 10): a declared SLO (so every request-latency
observation also maintains exemplar slots the evaluator reads) on top of
the always-attached flight recorder's per-request ring note, which both
modes pay. Gate: tracing-on adds **< 3%**.

``main()`` appends a run to ``BENCH_service.json`` at the repo root (bench
tag ``obs_overhead``) — the perf-trajectory artifact documented in
``benchmarks/common.py`` and ``docs/BENCHMARKS.md``.
"""

from __future__ import annotations

import time
from pathlib import Path

from common import append_trajectory_run, emit, tc_workload
from repro.bench import render_table
from repro.graphs import load_graph
from repro.obs import parse_slo
from repro.service import Engine, Request

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: acceptance gate (ISSUE 6): warm-2P latency penalty with tracing enabled
GATE_MAX_OVERHEAD = 0.03

GRAPH, ALGO, PHASES = "rmat-s9-e8", "hash", 2
WARM_REQUESTS, REPEATS = 300, 3


def _engine(L, mask, *, tracing: bool) -> Engine:
    # result cache off: warm = plan-hit numeric. Tracing-on carries the
    # declared SLO so the run prices the whole diagnosis stack (exemplar
    # slots, flight-recorder ring notes, chunk-observer sink).
    slos = [parse_slo("p99=50ms:0.99")] if tracing else None
    eng = Engine(tracing=tracing, slos=slos)
    eng.register("L", L)
    eng.register("M", mask)
    return eng


def _request(tag: str = "") -> Request:
    return Request(a="L", b="L", mask="M", algorithm=ALGO, phases=PHASES,
                   semiring="plus_pair", tag=tag)


def measure_warm_latency(L, mask, *, tracing: bool,
                         requests: int = WARM_REQUESTS,
                         repeats: int = REPEATS) -> float:
    """Mean warm-2P seconds/request, best of ``repeats`` timed streams."""
    eng = _engine(L, mask, tracing=tracing)
    try:
        eng.submit(_request("cold"))  # populate the plan cache
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            for i in range(requests):
                eng.submit(_request(str(i)))
            best = min(best, (time.perf_counter() - t0) / requests)
        assert eng.stats.plan_misses == 1  # every timed request was warm
        return best
    finally:
        eng.close()


def main() -> None:
    emit("[Obs overhead] warm-2P serving latency, tracing on vs off")
    emit(f"case: tc {GRAPH} {ALGO}-2P, {WARM_REQUESTS} warm requests x "
         f"{REPEATS} repeats (best mean)\n")
    L, mask = tc_workload(load_graph(GRAPH))
    case = f"tc-{GRAPH}-{ALGO}2p"

    t_off = measure_warm_latency(L, mask, tracing=False)
    t_on = measure_warm_latency(L, mask, tracing=True)
    overhead = t_on / t_off - 1.0

    results = [
        {"case": case, "mode": "tracing-off", "requests": WARM_REQUESTS,
         "mean_ms": t_off * 1e3, "overhead_vs_off": 0.0},
        {"case": case, "mode": "tracing-on", "requests": WARM_REQUESTS,
         "mean_ms": t_on * 1e3, "overhead_vs_off": overhead,
         "gate_max": GATE_MAX_OVERHEAD,
         "gate_pass": bool(overhead < GATE_MAX_OVERHEAD)},
    ]
    emit(render_table(
        ["case", "mode", "mean (ms)", "overhead"],
        [[case, "tracing-off", t_off * 1e3, 0.0],
         [case, "tracing-on", t_on * 1e3, overhead]]))

    append_trajectory_run(ARTIFACT, "obs_overhead", results)
    emit(f"\nappended run to {ARTIFACT.name} ({len(results)} results)")

    verdict = "PASS" if overhead < GATE_MAX_OVERHEAD else "FAIL"
    emit(f"acceptance gate [warm-2p tracing overhead]: {overhead * 100:+.2f}% "
         f"(need < {GATE_MAX_OVERHEAD * 100:.0f}%) → {verdict}")


# ----------------------------------------------------------------------- #
# pytest-benchmark faces (`pytest benchmarks/ --benchmark-only -k obs`)
# ----------------------------------------------------------------------- #
def _warm_engine(tracing: bool):
    L, mask = tc_workload(load_graph("rmat-s8-e4"))
    eng = _engine(L, mask, tracing=tracing)
    eng.submit(_request("cold"))
    return eng


def test_obs_overhead_tracing_off(benchmark):
    eng = _warm_engine(False)
    try:
        resp = benchmark.pedantic(lambda: eng.submit(_request()),
                                  rounds=20, warmup_rounds=3)
        assert resp.stats.plan_cache_hit and resp.stats.trace_id == ""
    finally:
        eng.close()


def test_obs_overhead_tracing_on(benchmark):
    eng = _warm_engine(True)
    try:
        resp = benchmark.pedantic(lambda: eng.submit(_request()),
                                  rounds=20, warmup_rounds=3)
        assert resp.stats.plan_cache_hit and resp.stats.trace_id
        rec = eng.tracer.get(resp.stats.trace_id)
        assert rec is not None and rec.find("numeric")
    finally:
        eng.close()


if __name__ == "__main__":
    main()
