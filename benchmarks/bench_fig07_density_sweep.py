"""Figure 7 — best algorithm per (mask degree × input degree) cell.

Paper: Erdős-Rényi inputs, dimensions 2^12-2^22, mask degree 1-1024 (x axis)
vs input degree 1-128 (y axis); each cell colored by the winning scheme.
Findings to reproduce (§8.1):

* mask ≪ inputs → **Inner** wins;
* inputs ≪ mask → **Heap/HeapDot** win;
* comparable density → **MSA/Hash** win (MSA on smaller, Hash on larger
  matrices).

Scaled grid: n = 2^10 (with a 2^8 and a 2^12 row to show the size effect),
mask degrees {1,4,16,64,256}, input degrees {1,2,4,8,16,32}.

``main()`` prints the winner grid; pytest-benchmark times the three regime
corners.
"""

from __future__ import annotations

import numpy as np

from common import emit, tc_runner
from repro import Mask, masked_spgemm
from repro.bench import render_table, time_callable
from repro.core import display_name
from repro.graphs import erdos_renyi

ALGOS = ("inner", "hash", "msa", "mca", "heap", "heapdot")

MASK_DEGREES = (1, 4, 16, 64, 256)
INPUT_DEGREES = (1, 2, 4, 8, 16, 32, 64)


def make_cell(n: int, d_in: float, d_m: float, seed: int = 0):
    A = erdos_renyi(n, d_in, rng=seed * 3 + 1)
    B = erdos_renyi(n, d_in, rng=seed * 3 + 2)
    M = erdos_renyi(n, d_m, rng=seed * 3 + 3)
    return A, B, Mask.from_matrix(M)


def best_algorithm(n: int, d_in: float, d_m: float, repeats: int = 2) -> str:
    A, B, mask = make_cell(n, d_in, d_m)
    best, best_t = None, float("inf")
    for alg in ALGOS:
        t = time_callable(lambda a=alg: masked_spgemm(A, B, mask, algorithm=a),
                          repeats=repeats, warmup=1)
        if t < best_t:
            best, best_t = alg, t
    return best


def winner_grid(n: int, repeats: int = 2) -> str:
    rows = []
    for d_in in INPUT_DEGREES:
        row = [d_in]
        for d_m in MASK_DEGREES:
            row.append(display_name(best_algorithm(n, d_in, d_m, repeats), 1)
                       .replace("-1P", ""))
        rows.append(row)
    headers = ["deg(A,B) \\ deg(M)"] + [str(d) for d in MASK_DEGREES]
    return render_table(headers, rows)


def main() -> None:
    emit("[Figure 7] Best scheme vs mask/input density (ER graphs)")
    emit("paper: Inner when mask ≪ inputs; Heap when inputs ≪ mask; "
         "MSA/Hash in between (MSA small n, Hash large n)\n")
    for n_exp in (8, 10, 12):
        emit(f"--- dimension 2^{n_exp} x 2^{n_exp} ---")
        emit(winner_grid(1 << n_exp))
        emit("")


# ----------------------------------------------------------------------- #
# pytest-benchmark: the three regime corners at n = 2^10
# ----------------------------------------------------------------------- #
def test_sparse_mask_regime_inner(benchmark):
    """mask ≪ inputs: Inner's home turf."""
    A, B, mask = make_cell(1 << 10, 16, 1)
    benchmark.pedantic(lambda: masked_spgemm(A, B, mask, algorithm="inner"),
                       rounds=3, warmup_rounds=1)


def test_dense_mask_regime_heap(benchmark):
    """inputs ≪ mask: Heap's home turf."""
    A, B, mask = make_cell(1 << 10, 2, 128)
    benchmark.pedantic(lambda: masked_spgemm(A, B, mask, algorithm="heap"),
                       rounds=3, warmup_rounds=1)


def test_balanced_regime_msa(benchmark):
    """comparable densities: MSA's home turf."""
    A, B, mask = make_cell(1 << 10, 8, 8)
    benchmark.pedantic(lambda: masked_spgemm(A, B, mask, algorithm="msa"),
                       rounds=3, warmup_rounds=1)


if __name__ == "__main__":
    main()
