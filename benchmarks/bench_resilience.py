"""Resilience overhead — degraded serving must not cost real throughput.

The PR-7 resilience ladder (retry policy, circuit breaker, deadline checks,
fault seam) sits on the request hot path, so it needs a perf gate, not just
correctness tests. The scenario measured here is the breaker's whole reason
to exist: the shard pool is *down* (an injected worker error tripped the
breaker open), and every subsequent warm-2P request routes straight to the
in-process tier. That degraded stream should cost no more than the breaker
check itself — within noise of an engine that never had shards at all.

Two faces, same repeated-mask TC workload:

* **plain-inprocess** — ``Engine()`` (no shard tier configured), warm plans;
* **degraded-breaker-open** — ``Engine(shards=2)`` whose breaker an injected
  ``shard.numeric`` worker error tripped open (cooldown longer than the
  run), warm plans; every request pays breaker ``allow()`` + routing and
  then executes identically in-process. Opening the breaker also parks the
  idle pool (:meth:`ShardCoordinator.quiesce`), so the degraded face is not
  charged GIL contention from support threads of a tier it cannot use.

The faces are measured *interleaved*, one request each in alternation, so
both see the same instantaneous machine state — sequential whole-stream
timing lets multi-ms baseline drift between the two windows masquerade as
routing overhead.

Acceptance gate (ISSUE PR 7): degraded warm-2P throughput ≥ **0.9×** the
plain in-process engine, with bit-identical responses. ``main()`` appends a
``resilience`` run to ``BENCH_service.json`` (envelope documented in
``benchmarks/common.py``).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from common import append_trajectory_run, emit, latest_trajectory_run, tc_workload
from repro.bench import render_table
from repro.bench.metrics import latency_percentiles
from repro.graphs import load_graph
from repro.resilience import CircuitBreaker, FaultPlan, RetryPolicy
from repro.service import Engine, Request

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: acceptance gate: degraded warm throughput vs plain in-process
GATE_MIN_RATIO = 0.9

GRAPH = "rmat-s8-e4"
ALGO, PHASES, REQUESTS = "hash", 2, 32

#: unmeasured warm requests served before timing starts — lets allocator and
#: cache state settle, and puts the degraded face's pool teardown (the
#: breaker-open quiesce fires on the priming request) outside the timed
#: window. The gate is about steady-state routing overhead.
SETTLE = 12


def _engine_for(L, mask, **kw) -> Engine:
    eng = Engine(**kw)
    eng.register("L", L)
    eng.register("M", mask)
    return eng


def _request(tag: str) -> Request:
    return Request(a="L", b="L", mask="M", algorithm=ALGO, phases=PHASES,
                   semiring="plus_pair", tag=tag)


def _degraded_engine(L, mask) -> Engine:
    """An engine whose shard tier is down and breaker open: one injected
    worker error on the priming request trips a threshold-1 breaker whose
    cooldown outlasts the measured stream."""
    eng = _engine_for(
        L, mask, shards=2,
        faults=FaultPlan(["shard.numeric:error:1"]),
        retry=RetryPolicy(max_attempts=1),
        breaker=CircuitBreaker(failure_threshold=1, reset_seconds=3600.0))
    if eng.shards is None:  # no usable shared memory on this box: trip the
        eng.breaker.record_failure()  # breaker directly — same routing
    return eng


def _warm_stream(engine: Engine, n: int, settle: int = 0):
    """Prime the plan cache, serve ``settle`` unmeasured requests, then
    serve ``n`` warm requests serially (the overhead under test is
    per-request engine-side work; the async front end would add identical
    queueing to both faces). Returns (responses, per-request seconds,
    wall seconds)."""
    engine.submit(_request("prime"))
    for i in range(settle):
        engine.submit(_request(f"settle-{i}"))
    lat, resps = [], []
    t0 = time.perf_counter()
    for i in range(n):
        resp = engine.submit(_request(str(i)))
        lat.append(resp.stats.total_seconds)
        resps.append(resp)
    wall = time.perf_counter() - t0
    assert all(r.stats.plan_cache_hit for r in resps)
    return resps, lat, wall


def _mode_row(case, mode, latencies, wall_seconds, n):
    pct = latency_percentiles(latencies, percentiles=(50, 95))
    return {"case": case, "mode": mode, "requests": n,
            "wall_seconds": wall_seconds, "rps": n / wall_seconds,
            "mean_ms": float(np.mean(latencies)) * 1e3,
            "p50_ms": pct[50] * 1e3, "p95_ms": pct[95] * 1e3}


def bench_case(gname: str = GRAPH, requests: int = REQUESTS):
    """Returns ([plain row, degraded row], gate row)."""
    L, mask = tc_workload(load_graph(gname))
    case = f"tc-{gname}-{ALGO}{PHASES}p"

    eng_plain = _engine_for(L, mask)
    eng_deg = _degraded_engine(L, mask)
    try:
        for eng in (eng_plain, eng_deg):
            eng.submit(_request("prime"))
            for i in range(SETTLE):
                eng.submit(_request(f"settle-{i}"))
        assert eng_deg.breaker.state == "open"  # tripped on the prime

        # paired measurement: alternate one request per face so both see
        # the same instantaneous machine state
        plain_resps, plain_lat, plain_wall = [], [], 0.0
        deg_resps, deg_lat, deg_wall = [], [], 0.0
        for i in range(requests):
            for resps, lat, eng, tag in (
                    (plain_resps, plain_lat, eng_plain, f"p{i}"),
                    (deg_resps, deg_lat, eng_deg, f"d{i}")):
                t0 = time.perf_counter()
                resp = eng.submit(_request(tag))
                dt = time.perf_counter() - t0
                if eng is eng_plain:
                    plain_wall += dt
                else:
                    deg_wall += dt
                lat.append(resp.stats.total_seconds)
                resps.append(resp)

        assert eng_deg.breaker.state == "open"  # the whole stream degraded
        assert not any(r.stats.sharded for r in deg_resps)
        assert all(r.stats.plan_cache_hit
                   for r in plain_resps + deg_resps)
    finally:
        eng_plain.close()
        eng_deg.close()

    # degraded must mean *routed*, never *different*
    baseline = plain_resps[0].result
    assert all(r.result.equals(baseline) for r in plain_resps)
    assert all(r.result.equals(baseline) for r in deg_resps)

    plain = _mode_row(case, "plain-inprocess", plain_lat, plain_wall,
                      requests)
    deg = _mode_row(case, "degraded-breaker-open", deg_lat, deg_wall,
                    requests)
    ratio = deg["rps"] / plain["rps"]
    gate = {"case": case, "mode": "resilience-gate", "requests": requests,
            "rps_plain": plain["rps"], "rps_degraded": deg["rps"],
            "throughput_ratio": ratio, "gate_min": GATE_MIN_RATIO,
            "bit_identical": True,
            "gate_pass": bool(ratio >= GATE_MIN_RATIO)}
    return [plain, deg], gate


def main() -> None:
    emit("[Resilience] degraded serving overhead (shard tier down, breaker "
         f"open) — warm-{PHASES}P repeated-mask TC, {ALGO} kernel")
    emit("plain-inprocess = no shard tier; degraded-breaker-open = tripped "
         "breaker routes every request around the dead pool\n")
    rows, gate = bench_case()
    emit(render_table(
        ["case", "mode", "reqs", "req/s", "mean (ms)", "p50 (ms)",
         "p95 (ms)"],
        [[r["case"], r["mode"], r["requests"], r["rps"], r["mean_ms"],
          r["p50_ms"], r["p95_ms"]] for r in rows]))
    emit(f"\ndegraded/plain throughput: {gate['throughput_ratio']:.3f}x "
         f"(gate ≥ {GATE_MIN_RATIO}x, bit-identical) → "
         f"{'PASS' if gate['gate_pass'] else 'FAIL'}")

    prev = latest_trajectory_run(ARTIFACT, bench="resilience")
    append_trajectory_run(ARTIFACT, "resilience", rows + [gate])
    emit(f"appended run to {ARTIFACT.name} ({len(rows) + 1} results)")
    if prev is not None:
        old = [r for r in prev["results"]
               if r.get("mode") == "resilience-gate"]
        if old:
            emit(f"  ratio drift: {old[-1]['throughput_ratio']:.3f}x → "
                 f"{gate['throughput_ratio']:.3f}x")
    if not gate["gate_pass"]:
        emit("acceptance gate: FAIL")
        raise SystemExit(1)
    emit("acceptance gate: degraded warm serving held ≥ "
         f"{GATE_MIN_RATIO}x plain in-process throughput → PASS")


# ----------------------------------------------------------------------- #
# pytest-benchmark faces (`pytest benchmarks/ --benchmark-only -k resilience`)
# ----------------------------------------------------------------------- #
def test_resilience_degraded_warm_stream(benchmark, tc_small):
    """Warm stream through a breaker-open engine (the degraded face)."""
    L, mask = tc_small
    eng = _degraded_engine(L, mask)
    try:
        resps, _, _ = benchmark.pedantic(lambda: _warm_stream(eng, 8),
                                         rounds=3, warmup_rounds=1)
        assert eng.breaker.state == "open"
        assert not any(r.stats.sharded for r in resps)
    finally:
        eng.close()


def test_resilience_plain_warm_stream(benchmark, tc_small):
    """The plain in-process face the gate compares against."""
    L, mask = tc_small
    eng = _engine_for(L, mask)
    try:
        resps, _, _ = benchmark.pedantic(lambda: _warm_stream(eng, 8),
                                         rounds=3, warmup_rounds=1)
        assert all(r.stats.plan_cache_hit for r in resps)
    finally:
        eng.close()


if __name__ == "__main__":
    main()
