"""Figure 11 — Triangle Counting strong scaling (thread count sweep).

Paper: R-MAT scale 20, 1-32 threads (Haswell) / 1-68 (KNL), "all algorithms
scaling well in all cases".

Reproduction: R-MAT scale 10, 1-8 workers. The default executor is the
**simulated** work/span model (DESIGN.md: deterministic strong-scaling shape
on a 2-core GIL-bound box); the reported "parallel time" is the greedy
list-schedule makespan of the measured chunk times, with speedup = serial /
makespan. Pass ``--process`` via ``main(use_process=True)`` for fork-based
real parallelism.
"""

from __future__ import annotations

import time

from common import emit, rmat_tc_workloads, tc_runner
from repro.bench import render_series
from repro.core import display_name
from repro.parallel import ProcessExecutor, SimulatedExecutor

WORKERS = (1, 2, 4, 8)
SCHEMES = [("msa", 1), ("hash", 1), ("mca", 1)]


def scaling_series(scale: int = 10, use_process: bool = False):
    (_, L, mask, flops), = rmat_tc_workloads([scale])
    series: dict[str, list[tuple[float, float]]] = {}
    for alg, ph in SCHEMES:
        label = display_name(alg, ph)
        pts = []
        for p in WORKERS:
            if use_process:
                ex = ProcessExecutor(p)
                run = tc_runner(L, mask, alg, ph, executor=ex)
                run()  # warmup
                t0 = time.perf_counter()
                run()
                elapsed = time.perf_counter() - t0
            else:
                ex = SimulatedExecutor(p)
                run = tc_runner(L, mask, alg, ph, executor=ex)
                run()  # warmup
                run()
                elapsed = ex.last_makespan_seconds
            pts.append((p, elapsed))
        series[label] = pts
    return series


def main(use_process: bool = False) -> None:
    mode = "process pool (fork)" if use_process else "simulated work/span"
    emit(f"[Figure 11] Triangle Counting strong scaling, R-MAT scale 10 ({mode})")
    emit("paper: all algorithms scale well with thread count\n")
    series = scaling_series(use_process=use_process)
    emit(render_series("TC time vs workers", "workers", "seconds", series))
    emit("")
    speedups = {}
    for label, pts in series.items():
        t1 = dict(pts)[1]
        speedups[label] = {p: round(t1 / t, 2) for p, t in pts}
    emit(f"speedup vs 1 worker: {speedups}")


# ----------------------------------------------------------------------- #
def test_tc_parallel_sim_4workers(benchmark):
    (_, L, mask, _), = rmat_tc_workloads([9])
    ex = SimulatedExecutor(4)
    benchmark.pedantic(tc_runner(L, mask, "msa", 1, executor=ex),
                       rounds=3, warmup_rounds=1)


def test_tc_serial_reference_point(benchmark):
    (_, L, mask, _), = rmat_tc_workloads([9])
    benchmark.pedantic(tc_runner(L, mask, "msa", 1), rounds=3, warmup_rounds=1)


if __name__ == "__main__":
    import sys

    main(use_process="--process" in sys.argv)
