"""Fixtures shared by the benchmark suite.

Benchmark inputs are module-scoped and cached: generating R-MAT graphs is
cheap, but preparing TC workloads (symmetrize + degree sort + tril) should
not pollute the timed regions.
"""

import sys
from pathlib import Path

import pytest

# make `import common` work when pytest is invoked from the repo root
sys.path.insert(0, str(Path(__file__).parent))

from repro.graphs import load_graph, rmat
from repro.graphs.prep import triangle_prep, to_undirected_simple
from repro.mask import Mask


@pytest.fixture(scope="session")
def tc_small():
    """Small TC workload (rmat-s8-e4 suite graph)."""
    from common import tc_workload

    return tc_workload(load_graph("rmat-s8-e4"))


@pytest.fixture(scope="session")
def tc_medium():
    """Medium TC workload (rmat-s10-e8 suite graph)."""
    from common import tc_workload

    return tc_workload(load_graph("rmat-s10-e8"))


@pytest.fixture(scope="session")
def ktruss_graph():
    return load_graph("rmat-s9-e8")


@pytest.fixture(scope="session")
def bc_graph():
    return load_graph("er-s9-d8")


@pytest.fixture(scope="session")
def density_problem():
    """Balanced-density ER problem for accumulator micro-benches."""
    from repro.graphs import erdos_renyi

    n = 1 << 10
    A = erdos_renyi(n, 8, rng=41)
    B = erdos_renyi(n, 8, rng=42)
    M = erdos_renyi(n, 8, rng=43)
    return A, B, Mask.from_matrix(M)
