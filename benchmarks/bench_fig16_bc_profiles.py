"""Figure 16 — Betweenness Centrality performance profiles vs SS:SAXPY.

Paper: all real graphs except the three longest-running; schemes are MSA and
Hash (1P and 2P) vs SS:SAXPY — "MSA-1P obtains the best performance in all
test instances. 1P schemes again outperform 2P." MCA is absent (no
complement support), Inner/Heap/SS:DOT were "prohibitively slow".

Our SS:SAXPY stand-in for BC multiplies unmasked then applies the
(complemented) mask — the same code path contrast as the paper's.
"""

from __future__ import annotations

import numpy as np

from common import COMPLEMENT_SCHEMES, emit
from repro.algorithms import betweenness_centrality
from repro.bench import GridResult, performance_profile, render_profile, run_grid
from repro.core import display_name
from repro.graphs import suite_graphs

BATCH = 16


def bc_cases(limit=None):
    cases = []
    for name, g in suite_graphs(exclude_largest=True, limit=limit):
        rng = np.random.default_rng(hash(name) % (2 ** 31))
        sources = rng.choice(g.nrows, size=min(BATCH, g.nrows), replace=False)

        def make(scheme, g=g, sources=sources):
            if isinstance(scheme, tuple):
                alg, ph = scheme
            else:
                alg, ph = scheme, 1
            return lambda: betweenness_centrality(g, sources, algorithm=alg,
                                                  phases=ph)

        cases.append((name, make))
    return cases


def main() -> None:
    emit(f"[Figure 16] Betweenness Centrality profiles (batch {BATCH}): "
         f"MSA/Hash 1P/2P vs SS:SAXPY")
    emit("paper: MSA-1P best in all instances; 1P beats 2P\n")
    # suite minus largest, and skip the slowest half for the saxpy baseline
    # exactly as the paper skips its slowest inputs
    grid = run_grid(bc_cases(limit=12), list(COMPLEMENT_SCHEMES) + ["saxpy"],
                    repeats=1, warmup=0)
    out = GridResult()
    for scheme, per in grid.times.items():
        label = (display_name(*scheme) if isinstance(scheme, tuple)
                 else display_name(scheme))
        for case, t in per.items():
            out.record(label, case, t)
    prof = performance_profile(out.times)
    emit(render_profile("BC: ours vs SS:SAXPY*", prof))
    emit(f"\nranking (best first): {', '.join(prof.ranking())}")
    emit(f"MSA-1P fraction-best: {prof.fraction_best('MSA-1P'):.2f}")


# ----------------------------------------------------------------------- #
def test_bc_msa_1p(benchmark, bc_graph):
    rng = np.random.default_rng(0)
    sources = rng.choice(bc_graph.nrows, size=BATCH, replace=False)
    benchmark.pedantic(
        lambda: betweenness_centrality(bc_graph, sources, algorithm="msa"),
        rounds=2, warmup_rounds=1)


def test_bc_hash_1p(benchmark, bc_graph):
    rng = np.random.default_rng(0)
    sources = rng.choice(bc_graph.nrows, size=BATCH, replace=False)
    benchmark.pedantic(
        lambda: betweenness_centrality(bc_graph, sources, algorithm="hash"),
        rounds=2, warmup_rounds=1)


def test_bc_baseline_saxpy(benchmark, bc_graph):
    rng = np.random.default_rng(0)
    sources = rng.choice(bc_graph.nrows, size=BATCH, replace=False)
    benchmark.pedantic(
        lambda: betweenness_centrality(bc_graph, sources, algorithm="saxpy"),
        rounds=2, warmup_rounds=1)


if __name__ == "__main__":
    main()
