"""Figure 8 — Triangle Counting performance profiles of our 12 variants.

Paper: Dolan-Moré profiles over 26 real graphs for the 12 proposed schemes
(6 algorithms × {1P, 2P}). Findings to reproduce (§8.2):

* **MSA-1P** best overall ("outperforming all other algorithms for 65% of
  the test cases"), **MCA-1P** second;
* Inner and Hash next; Heap/HeapDot worst;
* every 1P variant beats its own 2P variant.

``main()`` runs the full suite × 12 schemes and prints the profile table;
pytest-benchmark times the two headline schemes on one suite graph.
"""

from __future__ import annotations

from common import OUR_SCHEMES, emit, tc_grid_over_suite, tc_runner
from repro.bench import performance_profile, render_profile


def main() -> None:
    emit("[Figure 8] Triangle Counting: performance profiles, our 12 schemes")
    emit("paper: MSA-1P best (~65% of cases), then MCA-1P; 1P beats 2P; "
         "heap-based worst\n")
    grid = tc_grid_over_suite(OUR_SCHEMES, repeats=1)
    prof = performance_profile(grid.times)
    emit(render_profile("TC, all suite graphs, 12 schemes", prof))
    one_p = [s for s in prof.ranking() if s.endswith("-1P")]
    emit(f"\nranking (best first): {', '.join(prof.ranking())}")
    emit(f"best 1P scheme: {one_p[0]}")


# ----------------------------------------------------------------------- #
def test_tc_msa_1p(benchmark, tc_medium):
    L, mask = tc_medium
    benchmark.pedantic(tc_runner(L, mask, "msa", 1), rounds=3, warmup_rounds=1)


def test_tc_mca_1p(benchmark, tc_medium):
    L, mask = tc_medium
    benchmark.pedantic(tc_runner(L, mask, "mca", 1), rounds=3, warmup_rounds=1)


def test_tc_msa_2p(benchmark, tc_medium):
    """2P overhead visible against test_tc_msa_1p."""
    L, mask = tc_medium
    benchmark.pedantic(tc_runner(L, mask, "msa", 2), rounds=3, warmup_rounds=1)


def test_tc_heap_1p(benchmark, tc_medium):
    """The paper's worst family on TC."""
    L, mask = tc_medium
    benchmark.pedantic(tc_runner(L, mask, "heap", 1), rounds=3, warmup_rounds=1)


if __name__ == "__main__":
    main()
