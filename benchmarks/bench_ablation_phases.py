"""Ablation — one-phase vs two-phase execution (paper §6).

The paper's claim, "in stark contrast with the conventions of plain SpGEMM":
once a mask participates, computing in a single phase usually beats running
a symbolic phase first, because the mask already bounds the output size and
makes the 1P over-allocation cheap.

This ablation measures both sides of the tradeoff:

* masked TC workloads, 1P vs 2P per algorithm (1P should win);
* the same product **unmasked** (mask = full), where the upper bound is the
  flops bound and the symbolic phase can pay for itself — the regime where
  classic SpGEMM wisdom comes from.
"""

from __future__ import annotations

from common import emit, tc_runner, tc_workload
from repro.bench import render_table, time_callable
from repro.core import display_name
from repro.graphs import load_graph

ALGOS = ("msa", "hash", "mca", "heap", "inner")
GRAPHS = ("rmat-s9-e8", "er-s10-d16", "ws-s10-k4")


def main() -> None:
    emit("[Ablation: phases] 1P vs 2P on masked TC products (paper §6)")
    emit("paper: with a mask, 1P usually wins; symbolic work rarely pays\n")
    rows = []
    for gname in GRAPHS:
        L, mask = tc_workload(load_graph(gname))
        for alg in ALGOS:
            t1 = time_callable(tc_runner(L, mask, alg, 1), repeats=2, warmup=1)
            t2 = time_callable(tc_runner(L, mask, alg, 2), repeats=2, warmup=1)
            rows.append([gname, display_name(alg, 1), t1 * 1e3, t2 * 1e3,
                         t2 / t1])
    emit(render_table(
        ["graph", "scheme", "1P (ms)", "2P (ms)", "2P/1P"], rows))
    wins_1p = sum(1 for r in rows if r[4] > 1.0)
    emit(f"\n1P faster in {wins_1p}/{len(rows)} (graph, algorithm) pairs")


# ----------------------------------------------------------------------- #
def test_phases_1p(benchmark, tc_small):
    L, mask = tc_small
    benchmark.pedantic(tc_runner(L, mask, "hash", 1), rounds=3, warmup_rounds=1)


def test_phases_2p(benchmark, tc_small):
    L, mask = tc_small
    benchmark.pedantic(tc_runner(L, mask, "hash", 2), rounds=3, warmup_rounds=1)


if __name__ == "__main__":
    main()
