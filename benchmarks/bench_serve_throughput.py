"""Async serving path — throughput/latency by cache tier + warm-restart gate.

The serving claim (ISSUE 3 / ROADMAP): a request stream under a repeated
mask pattern should get monotonically cheaper as it climbs the cache
hierarchy, and warm plans should survive a process restart. Three modes are
measured through the real async front end (:class:`repro.service.AsyncServer`
— admission queue, worker pool, batch draining), all on the repeated-mask TC
workload:

* **cold** — every request pays plan build (auto-select + symbolic) +
  numeric pass (plan cache cleared between requests);
* **warm-plan** — plans cached, result cache off: numeric pass only;
* **result-hit** — result cache on and populated: memoized CSR out, no
  numeric pass at all.

The **warm-restart gate** (the ISSUE acceptance criterion) then exercises
persistence end to end: serve a stream cold, ``save_plans`` to an ``.npz``
store, restore into a *fresh* engine, re-serve, and require **100% plan
hits** plus **≥1.5× mean-latency speedup** over the cold path. Every mode's
responses are checked bit-identical against the cold run before timings are
recorded.

``main()`` appends one run to ``BENCH_service.json`` at the repo root — the
perf-trajectory artifact documented in ``benchmarks/common.py`` and
``docs/BENCHMARKS.md``.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from pathlib import Path

import numpy as np

from common import append_trajectory_run, emit, latest_trajectory_run, tc_workload
from repro.bench import render_table
from repro.bench.metrics import latency_percentiles
from repro.graphs import load_graph
from repro.service import AsyncServer, Engine, Request, serve_all

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: acceptance gate (ISSUE 3): restored-plan serving vs the cold path
GATE_MIN_SPEEDUP = 1.5

GRAPHS = ("rmat-s8-e4", "rmat-s9-e8")
#: hash-2P is the symbolic-heavy scheme — the regime plan caching targets
ALGO, PHASES, REQUESTS = "hash", 2, 24


def _engine_for(L, mask, **kw) -> Engine:
    eng = Engine(**kw)
    eng.register("L", L)
    eng.register("M", mask)
    return eng


def _request(tag: str) -> Request:
    return Request(a="L", b="L", mask="M", algorithm=ALGO, phases=PHASES,
                   semiring="plus_pair", tag=tag)


def _serve_stream(engine: Engine, n_requests: int, *, workers=1,
                  max_batch=8):
    """Serve a repeated-mask stream through the async front end; returns
    (responses, wall seconds). One worker by default: per-request latency
    then reflects the kernel, not GIL contention between batch threads
    (throughput is within noise of workers=2 on this pure-Python workload).
    Dedup is off: this bench measures what each cache *tier* costs per
    request, and coalescing identical in-flight requests would collapse the
    stream into one execution (it has its own telemetry in `serve --smoke`)."""
    reqs = [_request(str(i)) for i in range(n_requests)]

    async def run():
        t0 = time.perf_counter()
        async with AsyncServer(engine, workers=workers,
                               max_batch=max_batch, dedup=False) as srv:
            resps = await serve_all(srv, reqs)
        return resps, time.perf_counter() - t0

    return asyncio.run(run())


def _mode_row(case, mode, latencies, wall_seconds, n):
    pct = latency_percentiles(latencies, percentiles=(50, 95))
    mean = float(np.mean(latencies))
    return {"case": case, "mode": mode, "requests": n,
            "wall_seconds": wall_seconds, "rps": n / wall_seconds,
            "mean_ms": mean * 1e3, "p50_ms": pct[50] * 1e3,
            "p95_ms": pct[95] * 1e3}


def _bench_case(gname: str):
    """One graph's three serving modes + the warm-restart gate. Returns
    (result rows, gate row)."""
    L, mask = tc_workload(load_graph(gname))
    case = f"tc-{gname}-{ALGO}{PHASES}p"

    # -- cold: plan cache cleared between requests, so every request pays
    # the symbolic pass (this is the baseline the gate compares against)
    eng_cold = _engine_for(L, mask)
    cold_lat = []
    baseline = None
    for i in range(max(REQUESTS // 3, 6)):
        eng_cold.plans.clear()
        resp = eng_cold.submit(_request(f"cold{i}"))
        cold_lat.append(resp.stats.total_seconds)
        if baseline is None:
            baseline = resp.result
    cold = _mode_row(case, "cold", cold_lat, float(np.sum(cold_lat)),
                     len(cold_lat))

    # -- warm-plan: plans stay cached, result tier off
    eng_warm = _engine_for(L, mask)
    eng_warm.submit(_request("prime"))
    resps, wall = _serve_stream(eng_warm, REQUESTS)
    assert all(r.stats.plan_cache_hit for r in resps)
    assert all(r.result.equals(baseline) for r in resps)
    warm = _mode_row(case, "warm-plan",
                     [r.stats.numeric_seconds + r.stats.plan_seconds
                      for r in resps], wall, len(resps))

    # -- result-hit: full numeric memoization (max_batch=1 so each request's
    # total − queued is its own execution, not its batchmates')
    eng_res = _engine_for(L, mask, result_cache_bytes=256 << 20)
    eng_res.submit(_request("prime"))
    resps, wall = _serve_stream(eng_res, REQUESTS, max_batch=1)
    assert all(r.stats.result_cache_hit for r in resps)
    assert all(r.result.equals(baseline) for r in resps)  # bit-identical
    res = _mode_row(case, "result-hit",
                    [r.stats.total_seconds - r.stats.queued_seconds
                     for r in resps], wall, len(resps))

    # -- warm-restart gate: persist → fresh engine → restore → 100% hits
    with tempfile.TemporaryDirectory() as tmp:
        plan_path = Path(tmp) / "plans.npz"
        saved = eng_warm.save_plans(plan_path)
        restarted = _engine_for(L, mask)
        restored = restarted.load_plans(plan_path)
        resps, wall = _serve_stream(restarted, REQUESTS)
    assert all(r.result.equals(baseline) for r in resps)
    hit_rate = restarted.stats.plan_hit_rate
    warm_mean = float(np.mean([r.stats.numeric_seconds + r.stats.plan_seconds
                               for r in resps]))
    speedup = cold["mean_ms"] / (warm_mean * 1e3)
    gate = {"case": case, "mode": "warm-restart", "requests": len(resps),
            "plans_restored": restored, "plans_saved": saved,
            "plan_hit_rate": hit_rate, "cold_mean_ms": cold["mean_ms"],
            "warm_mean_ms": warm_mean * 1e3, "speedup_vs_cold": speedup,
            "gate_min": GATE_MIN_SPEEDUP,
            "gate_pass": bool(hit_rate == 1.0
                              and speedup >= GATE_MIN_SPEEDUP)}
    return [cold, warm, res], gate


def main() -> None:
    emit("[Serve] async front-end throughput/latency by cache tier "
         f"(repeated-mask TC, {ALGO}-{PHASES}P)")
    emit("cold = plan build + numeric; warm-plan = cached plan, numeric "
         "only; result-hit = memoized CSR output\n")
    results, rows, gates = [], [], []
    for gname in GRAPHS:
        mode_rows, gate = _bench_case(gname)
        results.extend(mode_rows + [gate])
        gates.append(gate)
        for r in mode_rows:
            rows.append([r["case"], r["mode"], r["requests"], r["rps"],
                         r["mean_ms"], r["p50_ms"], r["p95_ms"]])
    emit(render_table(["case", "mode", "reqs", "req/s", "mean (ms)",
                       "p50 (ms)", "p95 (ms)"], rows))

    emit("\n[Serve] warm-restart gate: persisted plans restored into a "
         "fresh engine")
    rows = [[g["case"], g["plans_restored"], f"{100 * g['plan_hit_rate']:.0f}%",
             g["cold_mean_ms"], g["warm_mean_ms"], g["speedup_vs_cold"],
             "PASS" if g["gate_pass"] else "FAIL"] for g in gates]
    emit(render_table(["case", "plans", "plan hits", "cold (ms)",
                       "restarted (ms)", "speedup", "gate ≥1.5x"], rows))

    prev = latest_trajectory_run(ARTIFACT, bench="serve_throughput")
    append_trajectory_run(ARTIFACT, "serve_throughput", results)
    emit(f"\nappended run to {ARTIFACT.name} ({len(results)} results)")
    if prev is not None:
        drift = {r["case"]: r["speedup_vs_cold"] for r in prev["results"]
                 if r.get("mode") == "warm-restart"}
        for g in gates:
            if g["case"] in drift:
                emit(f"  restart-speedup drift [{g['case']}]: "
                     f"{drift[g['case']]:.2f}x → {g['speedup_vs_cold']:.2f}x")
    if all(g["gate_pass"] for g in gates):
        emit("acceptance gate: every warm restart served 100% plan hits at "
             f"≥{GATE_MIN_SPEEDUP}x over cold → PASS")
    else:
        emit("acceptance gate: FAIL")
        raise SystemExit(1)


# ----------------------------------------------------------------------- #
# pytest-benchmark faces (`pytest benchmarks/ --benchmark-only -k serve`)
# ----------------------------------------------------------------------- #
def test_serve_warm_stream(benchmark, tc_small):
    L, mask = tc_small
    eng = _engine_for(L, mask)
    eng.submit(_request("prime"))
    resps, _ = benchmark.pedantic(lambda: _serve_stream(eng, 8),
                                  rounds=3, warmup_rounds=1)
    assert all(r.stats.plan_cache_hit for r in resps)


def test_serve_result_hit_stream(benchmark, tc_small):
    L, mask = tc_small
    eng = _engine_for(L, mask, result_cache_bytes=64 << 20)
    eng.submit(_request("prime"))
    resps, _ = benchmark.pedantic(lambda: _serve_stream(eng, 8),
                                  rounds=3, warmup_rounds=1)
    assert all(r.stats.result_cache_hit for r in resps)


if __name__ == "__main__":
    main()
