"""Ablation — the Heap NInspect parameter (paper §5.5, Algorithm 5).

NInspect bounds mask inspection per heap push: 0 = never inspect (base
algorithm), 1 = peek one mask element (the paper's Heap), ∞ = scan to
certainty (HeapDot). The tradeoff: inspection work vs wasted heap pushes
for masked-out products. The paper evaluates 1 and ∞; this ablation sweeps
the *reference* implementation (which implements the literal Algorithm 5
loop) across 0/1/4/∞ on masks of varying density, plus the vectorized
Heap-vs-HeapDot pair.
"""

from __future__ import annotations

import numpy as np

from common import emit
from repro import Mask, masked_spgemm
from repro.accumulators import HeapMerger, RowIterator
from repro.accumulators.heap_acc import INSPECT_ALL
from repro.bench import render_table, time_callable
from repro.graphs import erdos_renyi
from repro.semiring import PLUS_TIMES

NINSPECTS = (0, 1, 4, INSPECT_ALL)


def reference_heap_row_bench(n=4096, n_rows_in_u=24, row_len=24, mask_len=64,
                             seed=0):
    """One masked SpGEVM via the literal Algorithm 4/5 machinery."""
    rng = np.random.default_rng(seed)
    rows = []
    for k in range(n_rows_in_u):
        cols = np.sort(rng.choice(n, size=row_len, replace=False))
        rows.append((cols, rng.random(row_len), float(rng.integers(1, 4)), k))
    m_cols = np.sort(rng.choice(n, size=mask_len, replace=False))

    def run(ninspect):
        iters = [RowIterator(c, v, s, k) for c, v, s, k in rows]
        HeapMerger(PLUS_TIMES, ninspect=ninspect).merge(m_cols, iters)

    return run


def main() -> None:
    emit("[Ablation: NInspect] mask inspection budget for heap pushes")
    emit("paper evaluates NInspect ∈ {1, ∞}; complement forces 0\n")
    rows = []
    for mask_len in (16, 64, 256, 1024):
        run = reference_heap_row_bench(mask_len=mask_len)
        times = []
        for ni in NINSPECTS:
            t = time_callable(lambda ni=ni: run(ni), repeats=3, warmup=1)
            times.append(t * 1e3)
        label = [f"nnz(m)={mask_len}"] + times
        rows.append(label)
    emit(render_table(["row config", "NInspect=0 (ms)", "NInspect=1 (ms)",
                       "NInspect=4 (ms)", "NInspect=inf (ms)"], rows))

    emit("\nvectorized Heap (sort-then-filter) vs HeapDot (filter-then-sort):")
    v_rows = []
    for d_m in (1, 8, 64):
        A = erdos_renyi(1 << 10, 8, rng=70)
        B = erdos_renyi(1 << 10, 8, rng=71)
        mask = Mask.from_matrix(erdos_renyi(1 << 10, d_m, rng=72))
        th = time_callable(lambda: masked_spgemm(A, B, mask, algorithm="heap"),
                           repeats=2, warmup=1)
        td = time_callable(lambda: masked_spgemm(A, B, mask,
                                                 algorithm="heapdot"),
                           repeats=2, warmup=1)
        v_rows.append([f"deg(M)={d_m}", th * 1e3, td * 1e3, td / th])
    emit(render_table(["mask density", "Heap (ms)", "HeapDot (ms)",
                       "HeapDot/Heap"], v_rows))


# ----------------------------------------------------------------------- #
def test_ninspect_1_reference(benchmark):
    run = reference_heap_row_bench()
    benchmark.pedantic(lambda: run(1), rounds=3, warmup_rounds=1)


def test_ninspect_inf_reference(benchmark):
    run = reference_heap_row_bench()
    benchmark.pedantic(lambda: run(INSPECT_ALL), rounds=3, warmup_rounds=1)


if __name__ == "__main__":
    main()
