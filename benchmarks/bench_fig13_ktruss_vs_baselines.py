"""Figure 13 — k-truss: our best four vs the SS:GB baselines (k = 5).

Paper: "Our schemes MSA-1P and Inner-1P perform significantly better than
SS:GB schemes on Haswell and KNL, respectively."

Baselines here are the DESIGN.md stand-ins: multiply-then-mask (saxpy,
saxpy-scipy) and per-call-transpose dot.
"""

from __future__ import annotations

from common import emit
from repro.algorithms import ktruss
from repro.bench import GridResult, performance_profile, render_profile, run_grid
from repro.core import display_name
from repro.graphs import suite_graphs

K = 5
OURS = [("msa", 1), ("hash", 1), ("mca", 1), ("inner", 1)]
BASELINES = ["saxpy", "saxpy-scipy", "dot"]


def main() -> None:
    emit(f"[Figure 13] k-truss (k={K}): best-4 ours vs SS:GB baselines")
    emit("paper: MSA-1P / Inner-1P significantly better than SS:GB\n")
    cases = []
    for name, g in suite_graphs(exclude_largest=True):
        def make(scheme, g=g):
            if isinstance(scheme, tuple):
                alg, ph = scheme
            else:
                alg, ph = scheme, 1
            return lambda: ktruss(g, K, algorithm=alg, phases=ph)

        cases.append((name, make))
    grid = run_grid(cases, list(OURS) + BASELINES, repeats=1, warmup=1)
    out = GridResult()
    for scheme, per in grid.times.items():
        label = (display_name(*scheme) if isinstance(scheme, tuple)
                 else display_name(scheme))
        for case, t in per.items():
            out.record(label, case, t)
    # primary: same-tier comparison (isolates the algorithmic claim);
    # scipy's compiled multiply-then-mask is reported separately below.
    same_tier = {k: v for k, v in out.times.items()
                 if k != "SS:SAXPY*(scipy)"}
    prof = performance_profile(same_tier)
    emit(render_profile(f"k-truss k={K}: ours vs same-tier baselines", prof))
    emit(f"\nranking (best first): {', '.join(prof.ranking())}")

    import numpy as np

    scipy_t = out.times.get("SS:SAXPY*(scipy)", {})
    best_label = prof.ranking()[0]
    ratios = [out.times[best_label][c] / scipy_t[c]
              for c in scipy_t if c in out.times.get(best_label, {})]
    if ratios:
        emit(f"compiled reference point: scipy multiply-then-mask is "
             f"{np.median(ratios):.1f}x faster than {best_label} (median) — "
             f"an implementation-tier gap, not an algorithmic one.")


# ----------------------------------------------------------------------- #
def test_ktruss_ours_msa(benchmark, ktruss_graph):
    benchmark.pedantic(lambda: ktruss(ktruss_graph, K, algorithm="msa"),
                       rounds=3, warmup_rounds=1)


def test_ktruss_baseline_saxpy(benchmark, ktruss_graph):
    benchmark.pedantic(lambda: ktruss(ktruss_graph, K, algorithm="saxpy"),
                       rounds=3, warmup_rounds=1)


if __name__ == "__main__":
    main()
