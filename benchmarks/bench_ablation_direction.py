"""Ablation — push vs pull vs direction-optimized traversal (paper §4).

The paper grounds its Masked-SpGEMM taxonomy in the direction-optimized BFS
of Beamer/Yang ([5], [38]): push work tracks the frontier, pull work tracks
the unvisited (masked) set, and the right choice flips mid-traversal. This
ablation times full BFS runs with the direction forced each way against the
per-level work-estimate switch, on the two graph shapes that disagree about
the answer (hub-heavy R-MAT vs high-diameter mesh).
"""

from __future__ import annotations

from common import emit
from repro.algorithms.direction_bfs import direction_optimized_bfs
from repro.bench import render_table, time_callable
from repro.graphs import grid_graph, rmat
from repro.graphs.prep import to_undirected_simple

GRAPHS = {
    "rmat-s11-e16 (hubs)": lambda: to_undirected_simple(rmat(11, 16, rng=77)),
    "grid-40x40 (mesh)": lambda: grid_graph(40),
}


def main() -> None:
    emit("[Ablation: direction] push vs pull vs optimized BFS (paper §4 roots)")
    emit("expectation: pull pays off on hub graphs after the frontier "
         "explodes; meshes favour push almost throughout\n")
    rows = []
    for name, make in GRAPHS.items():
        g = make()
        times = {}
        for mode in ("push", "pull", None):
            label = mode or "auto"
            times[label] = time_callable(
                lambda m=mode: direction_optimized_bfs(g, 0, force=m),
                repeats=2, warmup=1)
        res = direction_optimized_bfs(g, 0)
        switch = (res.directions.index("pull")
                  if "pull" in res.directions else "-")
        rows.append([name, times["push"] * 1e3, times["pull"] * 1e3,
                     times["auto"] * 1e3, len(res.directions), switch])
    emit(render_table(
        ["graph", "push-only (ms)", "pull-only (ms)", "auto (ms)",
         "levels", "first pull level"], rows))
    emit("\n('first pull level' = '-' means the optimizer never left push)")


# ----------------------------------------------------------------------- #
def test_bfs_push_only(benchmark):
    g = to_undirected_simple(rmat(10, 16, rng=78))
    benchmark.pedantic(lambda: direction_optimized_bfs(g, 0, force="push"),
                       rounds=3, warmup_rounds=1)


def test_bfs_pull_only(benchmark):
    g = to_undirected_simple(rmat(10, 16, rng=78))
    benchmark.pedantic(lambda: direction_optimized_bfs(g, 0, force="pull"),
                       rounds=3, warmup_rounds=1)


def test_bfs_direction_optimized(benchmark):
    g = to_undirected_simple(rmat(10, 16, rng=78))
    benchmark.pedantic(lambda: direction_optimized_bfs(g, 0),
                       rounds=3, warmup_rounds=1)


if __name__ == "__main__":
    main()
