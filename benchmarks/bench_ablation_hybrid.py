"""Ablation — the hybrid per-row dispatcher vs fixed kernels (§9 extension).

The paper leaves hybrid algorithms as future work; this bench evaluates our
implementation on a workload engineered to have *heterogeneous rows*: one
block of rows where pull wins (hub A-rows with sparse mask rows), one where
heap wins (near-empty A-rows under a dense mask), one where MSA wins
(balanced). A fixed kernel must compromise somewhere; the hybrid should
track the per-block winner.
"""

from __future__ import annotations

import numpy as np

from common import emit
from repro import Mask, masked_spgemm
from repro.bench import render_table, time_callable
from repro.core import display_name
from repro.core.hybrid_kernel import classify_rows
from repro.sparse import COOMatrix, csr_random
from repro.validation import INDEX_DTYPE

ALGOS = ("msa", "hash", "heap", "inner", "hybrid")


def heterogeneous_workload(n=1 << 11, seed=123):
    rng = np.random.default_rng(seed)
    third = n // 3
    rows, cols = [], []
    # block 1: hub rows (256 nnz each) -> pull-friendly with sparse masks
    for i in range(third):
        cs = rng.choice(n, size=256, replace=False)
        rows += [i] * 256
        cols += cs.tolist()
    # block 2: near-empty rows (1 nnz) -> heap-friendly under dense masks
    for i in range(third, 2 * third):
        rows += [i]
        cols += [int(rng.integers(0, n))]
    # block 3: balanced rows (8 nnz)
    for i in range(2 * third, n):
        cs = rng.choice(n, size=8, replace=False)
        rows += [i] * 8
        cols += cs.tolist()
    A = COOMatrix(np.array(rows), np.array(cols), np.ones(len(rows)),
                  (n, n)).to_csr()
    B = csr_random(n, n, nnz=8 * n, rng=rng)
    # mask: sparse rows over block 1, dense rows over block 2, medium block 3
    mrows, mcols = [], []
    for i in range(third):
        mrows += [i] * 2
        mcols += rng.choice(n, size=2, replace=False).tolist()
    for i in range(third, 2 * third):
        mrows += [i] * 128
        mcols += rng.choice(n, size=128, replace=False).tolist()
    for i in range(2 * third, n):
        mrows += [i] * 8
        mcols += rng.choice(n, size=8, replace=False).tolist()
    M = COOMatrix(np.array(mrows), np.array(mcols), np.ones(len(mrows)),
                  (n, n)).to_csr()
    return A, B, Mask.from_matrix(M)


def main() -> None:
    emit("[Ablation: hybrid] per-row dispatch vs fixed kernels")
    emit("workload: 1/3 hub rows + sparse mask (pull), 1/3 empty-ish rows + "
         "dense mask (heap), 1/3 balanced (msa)\n")
    A, B, mask = heterogeneous_workload()
    cls = classify_rows(A, B, mask, np.arange(A.nrows, dtype=INDEX_DTYPE))
    unique, counts = np.unique(cls, return_counts=True)
    names = {0: "msa", 1: "heap", 2: "inner"}
    emit(f"hybrid row assignment: "
         f"{ {names[int(u)]: int(c) for u, c in zip(unique, counts)} }\n")
    rows = []
    times = {}
    for alg in ALGOS:
        t = time_callable(lambda a=alg: masked_spgemm(A, B, mask, algorithm=a),
                          repeats=2, warmup=1)
        times[alg] = t
        rows.append([display_name(alg, 1), t * 1e3])
    emit(render_table(["scheme", "time (ms)"], rows))
    best_fixed = min(t for a, t in times.items() if a != "hybrid")
    emit(f"\nhybrid vs best fixed kernel: "
         f"{times['hybrid'] / best_fixed:.2f}x "
         f"(< 1 means the future-work hybrid pays off)")


# ----------------------------------------------------------------------- #
def test_hybrid_heterogeneous(benchmark):
    A, B, mask = heterogeneous_workload(n=1 << 10)
    benchmark.pedantic(lambda: masked_spgemm(A, B, mask, algorithm="hybrid"),
                       rounds=3, warmup_rounds=1)


def test_fixed_msa_heterogeneous(benchmark):
    A, B, mask = heterogeneous_workload(n=1 << 10)
    benchmark.pedantic(lambda: masked_spgemm(A, B, mask, algorithm="msa"),
                       rounds=3, warmup_rounds=1)


if __name__ == "__main__":
    main()
