"""Figure 14 — k-truss GFLOPS vs R-MAT scale (k = 5).

Paper: "Inner and SS:DOT increase their GFLOPS rate well with increasing
matrix scale … The pull-based algorithms seem to attain better GFLOPS rates
in the k-truss benchmark" — the headline that algorithms deemed inefficient
for plain SpGEMM can top the charts once the mask participates.

Metric, per the paper (§8.3): sum of flops over *all* masked products in the
k-truss iteration divided by the total time of those products — here the
whole loop time, with flops taken from KTrussResult telemetry.
"""

from __future__ import annotations

from common import emit
from repro.algorithms import ktruss
from repro.bench import gflops, render_series, time_callable
from repro.core import display_name
from repro.graphs import rmat

K = 5
SCALES = range(6, 12)
SCHEMES = [("msa", 1), ("hash", 1), ("inner", 1), ("dot", 1)]


def main() -> None:
    emit(f"[Figure 14] k-truss (k={K}): GFLOPS vs R-MAT scale")
    emit("paper: pull-based (Inner, SS:DOT) grow their rates fastest with "
         "scale\n")
    series: dict[str, list[tuple[float, float]]] = {}
    for scale in SCALES:
        g = rmat(scale, 8, rng=9100 + scale)
        for alg, ph in SCHEMES:
            label = display_name(alg, ph)
            res = ktruss(g, K, algorithm=alg, phases=ph)  # warm + telemetry
            t = time_callable(lambda a=alg, p=ph: ktruss(g, K, algorithm=a,
                                                         phases=p),
                              repeats=1, warmup=0)
            series.setdefault(label, []).append(
                (scale, gflops(res.total_flops, t)))
    emit(render_series("k-truss GFLOPS vs scale", "scale", "GFLOPS", series))
    growth = {}
    for label, pts in series.items():
        ys = [y for _, y in pts]
        growth[label] = round(ys[-1] / max(ys[0], 1e-12), 2)
    emit(f"\nrate growth (last/first scale): {growth}")


# ----------------------------------------------------------------------- #
def test_ktruss_scale8_inner(benchmark):
    g = rmat(8, 8, rng=9108)
    benchmark.pedantic(lambda: ktruss(g, K, algorithm="inner"),
                       rounds=3, warmup_rounds=1)


def test_ktruss_scale8_msa(benchmark):
    g = rmat(8, 8, rng=9108)
    benchmark.pedantic(lambda: ktruss(g, K, algorithm="msa"),
                       rounds=3, warmup_rounds=1)


if __name__ == "__main__":
    main()
