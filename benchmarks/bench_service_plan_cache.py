"""Service layer — cold vs warm request latency under plan caching.

The serving claim (ISSUE 1 / ROADMAP): workloads that repeatedly multiply
under the *same mask pattern* should pay the pattern-only work (algorithm
auto-selection + the paper's §6 symbolic pass) once. This bench measures it
directly on repeated-mask TC workloads:

* **cold** — first request on a fresh engine: plan build (auto-select +
  symbolic) + numeric pass;
* **warm** — same request replayed: plan-cache hit, numeric pass only.

The warm/cold gap is the symbolic phase plus dispatch overhead, so it is
widest for two-phase schemes on symbolic-heavy kernels. A second table
replays iterative k-truss through a shared engine, where the *entire second
run* streams plan hits.
"""

from __future__ import annotations

from common import emit, tc_workload
from repro.bench import render_table, time_callable
from repro.core import display_name
from repro.graphs import load_graph
from repro.service import Engine, Request

ALGOS = ("msa", "hash", "inner", "auto")
GRAPHS = ("rmat-s8-e4", "rmat-s9-e8", "er-s10-d16")


def _engine_for(L, mask):
    eng = Engine()
    eng.register("L", L)
    eng.register("M", mask)
    return eng


def _request(alg):
    return Request(a="L", b="L", mask="M", algorithm=alg, phases=2,
                   semiring="plus_pair", tag=alg)


def main() -> None:
    emit("[Service] plan-cache cold vs warm request latency (phases=2, "
         "repeated-mask TC workload)")
    emit("cold = plan build + numeric; warm = cached plan, numeric only\n")
    rows = []
    for gname in GRAPHS:
        L, mask = tc_workload(load_graph(gname))
        for alg in ALGOS:
            eng = _engine_for(L, mask)
            req = _request(alg)
            cold = eng.submit(req)          # populates the cache
            warm_s = time_callable(lambda: eng.submit(req), repeats=3,
                                   warmup=1)
            cold_s = cold.stats.total_seconds
            rows.append([gname,
                         display_name(cold.stats.algorithm, 2)
                         + (" (auto)" if alg == "auto" else ""),
                         cold_s * 1e3, warm_s * 1e3, cold_s / warm_s,
                         cold.stats.plan_seconds * 1e3])
    emit(render_table(
        ["graph", "scheme", "cold (ms)", "warm (ms)", "cold/warm",
         "plan (ms)"], rows))
    wins = sum(1 for r in rows if r[4] > 1.0)
    emit(f"\nwarm beats cold in {wins}/{len(rows)} (graph, scheme) pairs")

    emit("\n[Service] k-truss served twice from one engine (k=5, hash-2P)")
    from repro.algorithms import ktruss

    rows = []
    for gname in GRAPHS[:2]:
        g = load_graph(gname)
        eng = Engine()
        t1 = time_callable(lambda: ktruss(g, 5, engine=Engine(),
                                          algorithm="hash", phases=2),
                           repeats=2, warmup=0)
        first = ktruss(g, 5, engine=eng, algorithm="hash", phases=2)
        t2 = time_callable(lambda: ktruss(g, 5, engine=eng,
                                          algorithm="hash", phases=2),
                           repeats=2, warmup=0)
        replay = ktruss(g, 5, engine=eng, algorithm="hash", phases=2)
        rows.append([gname, first.iterations, t1 * 1e3, t2 * 1e3, t1 / t2,
                     replay.plan_hits])
    emit(render_table(
        ["graph", "iters", "cold run (ms)", "warm run (ms)", "speedup",
         "plan hits"], rows))
    emit("\nevery warm-run iteration reuses its cached plan "
         "(skipping auto-select + the symbolic pass)")


# ----------------------------------------------------------------------- #
# pytest-benchmark faces (collected via `pytest benchmarks/ --benchmark-only`)
# ----------------------------------------------------------------------- #
def test_service_cold_request(benchmark, tc_small):
    L, mask = tc_small

    def cold():
        eng = _engine_for(L, mask)
        return eng.submit(_request("hash"))

    benchmark.pedantic(cold, rounds=3, warmup_rounds=1)


def test_service_warm_request(benchmark, tc_small):
    L, mask = tc_small
    eng = _engine_for(L, mask)
    req = _request("hash")
    eng.submit(req)  # populate the plan cache
    resp = benchmark.pedantic(lambda: eng.submit(req), rounds=3,
                              warmup_rounds=1)
    assert resp.stats.plan_cache_hit and resp.stats.symbolic_skipped


if __name__ == "__main__":
    main()
