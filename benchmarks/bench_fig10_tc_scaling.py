"""Figure 10 — Triangle Counting GFLOPS vs R-MAT scale.

Paper: R-MAT scales 8-20 on Haswell and KNL; MSA-1P attains the highest
GFLOPS, Hash-1P and MCA-1P similar trends slightly below; SS:GB poor at
small scales with SS:SAXPY closing the gap as inputs grow.

Scaled reproduction: R-MAT scales 6-12 (edge factor 8); GFLOPS uses the
standard 2·flops(L·L) convention of :func:`repro.bench.metrics.spgemm_flops`.
"""

from __future__ import annotations

from common import emit, rmat_tc_workloads, tc_runner
from repro.bench import gflops, render_series, time_callable

SCALES = range(6, 13)
SCHEMES = [("msa", 1), ("hash", 1), ("mca", 1), ("inner", 1),
           ("saxpy", 1), ("dot", 1)]


def main() -> None:
    emit("[Figure 10] Triangle Counting: GFLOPS vs R-MAT scale (edge factor 8)")
    emit("paper: MSA-1P highest; Hash/MCA similar trends; baselines behind\n")
    workloads = rmat_tc_workloads(SCALES)
    series: dict[str, list[tuple[float, float]]] = {}
    from repro.core import display_name

    for alg, ph in SCHEMES:
        label = display_name(alg, ph)
        pts = []
        for scale, L, mask, flops in workloads:
            t = time_callable(tc_runner(L, mask, alg, ph), repeats=1, warmup=1)
            pts.append((scale, gflops(flops, t)))
        series[label] = pts
    emit(render_series("TC GFLOPS vs scale", "scale", "GFLOPS", series))
    finals = {k: v[-1][1] for k, v in series.items()}
    emit(f"\nGFLOPS at scale {max(SCALES)}: "
         f"{ {k: round(v, 4) for k, v in finals.items()} }")


# ----------------------------------------------------------------------- #
def test_tc_scale8_msa(benchmark):
    (_, L, mask, _), = rmat_tc_workloads([8])
    benchmark.pedantic(tc_runner(L, mask, "msa", 1), rounds=3, warmup_rounds=1)


def test_tc_scale10_msa(benchmark):
    (_, L, mask, _), = rmat_tc_workloads([10])
    benchmark.pedantic(tc_runner(L, mask, "msa", 1), rounds=3, warmup_rounds=1)


def test_tc_scale10_hash(benchmark):
    (_, L, mask, _), = rmat_tc_workloads([10])
    benchmark.pedantic(tc_runner(L, mask, "hash", 1), rounds=3, warmup_rounds=1)


if __name__ == "__main__":
    main()
