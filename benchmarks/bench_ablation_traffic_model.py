"""Ablation — §4 traffic model and cache behaviour, cross-checked.

Two experiments:

1. **Model vs measurement**: for a grid of density cells (mini Fig. 7), does
   :func:`repro.perfmodel.predicted_best` agree with the measured winner?
   Reported as an agreement fraction plus the two grids side by side.
2. **MSA cache cliff**: replay accumulator address traces through the LRU
   cache simulator while growing matrix width — MSA's dense-array miss rate
   climbs with ncols while Hash/MCA track nnz(m) (the paper's §5.3/§8.3
   cache narrative, measured).
"""

from __future__ import annotations

import numpy as np

from common import emit
from repro import Mask, masked_spgemm
from repro.bench import render_table, time_callable
from repro.graphs import erdos_renyi
from repro.perfmodel import predicted_best, simulate_row_misses
from repro.sparse import csr_random

ALGOS = ("inner", "msa", "hash", "mca", "heap", "heapdot")


def measured_times(A, B, mask) -> dict[str, float]:
    return {alg: time_callable(
        lambda a=alg: masked_spgemm(A, B, mask, algorithm=a),
        repeats=2, warmup=1) for alg in ALGOS}


def main() -> None:
    emit("[Ablation: traffic model] §4 formulas vs measured winners")
    emit("regret = time(model's pick) / time(measured best); a useful model "
         "keeps regret near 1 even when the argmin differs\n")
    n = 1 << 10
    cells = [(d_in, d_m) for d_in in (2, 8, 32) for d_m in (1, 8, 64)]
    rows = []
    pull_agree = 0
    regrets = []
    for d_in, d_m in cells:
        A = erdos_renyi(n, d_in, rng=80)
        B = erdos_renyi(n, d_in, rng=81)
        mask = Mask.from_matrix(erdos_renyi(n, d_m, rng=82))
        pred = predicted_best(A, B, mask)
        times = measured_times(A, B, mask)
        meas = min(times, key=times.get)
        regret = times[pred] / times[meas]
        regrets.append(regret)
        # the load-bearing prediction is the push/pull boundary (§4.3)
        pred_family = "pull" if pred == "inner" else "push"
        meas_family = "pull" if meas == "inner" else "push"
        pull_agree += pred_family == meas_family
        rows.append([d_in, d_m, pred, meas,
                     "yes" if pred_family == meas_family else "NO", regret])
    emit(render_table(["deg(A,B)", "deg(M)", "model best", "measured best",
                       "family agree", "regret"], rows))
    emit(f"\npush/pull boundary agreement: {pull_agree}/{len(cells)}; "
         f"mean regret of following the model: {np.mean(regrets):.2f}x "
         f"(worst {max(regrets):.2f}x)")

    emit("\n[Ablation: cache cliff] accumulator L1 miss rate vs matrix width")
    miss_rows = []
    for n_exp in (8, 11, 14, 16):
        ncols = 1 << n_exp
        rng = np.random.default_rng(90)
        A = csr_random(48, ncols, nnz=48 * 8, rng=rng)
        B = csr_random(ncols, ncols, nnz=ncols * 8, rng=rng)
        M = csr_random(48, ncols, nnz=48 * 8, rng=rng)
        mask = Mask.from_matrix(M)
        rates = []
        for alg in ("msa", "hash", "mca"):
            m, a = simulate_row_misses(alg, A, B, mask, range(48),
                                       size_bytes=32 * 1024)
            rates.append(m / max(a, 1))
        miss_rows.append([f"2^{n_exp}"] + rates)
    emit(render_table(["ncols", "MSA miss rate", "Hash miss rate",
                       "MCA miss rate"], miss_rows))
    emit("\npaper narrative check: MSA's rate should climb with ncols while "
         "Hash/MCA stay flat")


# ----------------------------------------------------------------------- #
def test_cache_sim_msa_wide(benchmark):
    ncols = 1 << 14
    rng = np.random.default_rng(91)
    A = csr_random(16, ncols, nnz=16 * 8, rng=rng)
    B = csr_random(ncols, ncols, nnz=ncols * 4, rng=rng)
    M = csr_random(16, ncols, nnz=16 * 8, rng=rng)
    mask = Mask.from_matrix(M)
    benchmark.pedantic(
        lambda: simulate_row_misses("msa", A, B, mask, range(16)),
        rounds=2, warmup_rounds=0)


def test_traffic_prediction(benchmark):
    n = 1 << 10
    A = erdos_renyi(n, 8, rng=92)
    B = erdos_renyi(n, 8, rng=93)
    mask = Mask.from_matrix(erdos_renyi(n, 8, rng=94))
    benchmark.pedantic(lambda: predicted_best(A, B, mask), rounds=3,
                       warmup_rounds=1)


if __name__ == "__main__":
    main()
